"""Kernel-backend registry: lookup, selection policy, capability gates.

Covers the strategy-registry contract of
:mod:`repro.core.completion.backends` — name/alias lookup with helpful
errors, the env > explicit > calibrated-best resolution order, the
capability flags the model layer gates on (the plan-reuse gate used to
be a ``kernel == "batched"`` string literal; these are its regression
tests), and backend attribution flowing through persistence, registry
manifests, engine stats, and the streaming trainer.
"""
import numpy as np
import pytest

from repro.core import CPRModel
from repro.core.completion import (
    backend_names,
    get_backend,
    registered_backends,
    resolve_backend,
    select_best,
)
from repro.core.completion import backends as backends_mod
from repro.core.completion.backends import (
    ENV_VAR,
    KernelBackend,
    NumpyBatchedBackend,
    register_backend,
)


def _data(seed=0, n=200):
    gen = np.random.default_rng(seed)
    X = np.exp(gen.uniform(0.0, np.log(64.0), size=(n, 2)))
    y = 1e-3 * X[:, 0] ** 1.2 * X[:, 1] ** 0.7 * np.exp(
        gen.normal(0, 0.02, size=n)
    )
    return X, y


@pytest.fixture
def clone_backend():
    """A plan-reuse backend registered under a fresh (non-'batched') name.

    The historical bug this guards: plan caching was gated on the literal
    name ``"batched"``, so an equivalent backend registered under any
    other name silently lost plan reuse.  The fixture unregisters on
    teardown and drops the select_best cache (the clone is selectable).
    """

    @register_backend
    class CloneBackend(NumpyBatchedBackend):
        name = "clone_test"
        aliases = ("clone_alias",)

    try:
        yield backends_mod._REGISTRY["clone_test"]
    finally:
        backends_mod._REGISTRY.pop("clone_test", None)
        backends_mod._ALIASES.pop("clone_alias", None)
        backends_mod._SELECTED = None


class TestRegistry:
    def test_core_backends_registered(self):
        assert {"reference", "numpy_batched", "numba_jit"} <= set(backend_names())

    def test_alias_resolves_to_same_object(self):
        assert get_backend("batched") is get_backend("numpy_batched")

    def test_unknown_backend_error_lists_registered_names(self):
        with pytest.raises(ValueError, match="registered backends"):
            get_backend("no_such_backend")
        try:
            get_backend("no_such_backend")
        except ValueError as exc:
            for name in backend_names():
                assert name in str(exc)

    def test_resolved_instances_pass_through(self):
        b = get_backend("numpy_batched")
        assert get_backend(b) is b
        assert resolve_backend(b) is b

    def test_unavailable_backend_raises_with_probe_reason(self):
        b = get_backend("numba_jit", require_available=False)
        if b.available():
            pytest.skip("numba is installed here; unavailability untestable")
        with pytest.raises(ValueError, match="not available"):
            get_backend("numba_jit")
        assert b.unavailable_reason()

    def test_describe_is_capability_record(self):
        for b in registered_backends():
            d = b.describe()
            assert {"name", "aliases", "available", "supports_plan_reuse",
                    "supports_partial_fit", "selectable"} <= set(d)
        assert get_backend("reference").describe()["selectable"] is False
        assert get_backend("numpy_batched").describe()["supports_plan_reuse"]

    def test_duplicate_registration_rejected(self):
        before = backend_names()
        with pytest.raises(ValueError, match="already registered"):
            @register_backend
            class Duplicate(NumpyBatchedBackend):  # noqa: F811
                name = "reference"
                aliases = ()
        assert backend_names() == before

    def test_registering_extends_names_and_errors(self, clone_backend):
        assert "clone_test" in backend_names()
        assert get_backend("clone_alias") is clone_backend
        # New registrations show up in the unknown-name error too.
        with pytest.raises(ValueError, match="clone_test"):
            get_backend("no_such_backend")


class TestSelectionPolicy:
    def test_env_override_outranks_explicit_argument(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "reference")
        assert resolve_backend("numpy_batched").name == "reference"

    def test_explicit_argument_without_env(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend("batched").name == "numpy_batched"

    def test_default_is_calibrated_best(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        b = resolve_backend(None)
        assert b.available() and b.selectable
        assert resolve_backend(None) is b  # cached for the process

    def test_select_best_never_picks_reference(self):
        assert select_best(force=True).name != "reference"

    def test_env_override_reaches_model_fit(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "reference")
        X, y = _data()
        m = CPRModel(cells=4, rank=2, max_sweeps=4).fit(X, y)
        assert m.fit_backend_ == "reference"


class TestCalibrationSidecar:
    """select_best persists its winner to a JSON sidecar keyed by
    (host, candidate set), so forked workers calibrate once per host.

    Every test here registers the clone backend, guaranteeing at least
    two selectable candidates even on hosts without numba (with a single
    candidate no calibration — and no sidecar traffic — happens at all).
    The autouse conftest fixture points ``REPRO_KERNEL_CALIBRATION`` at a
    per-test temp file.
    """

    @pytest.fixture
    def timed(self, monkeypatch):
        """Count calibration timings (the expensive part select_best skips)."""
        calls = {"n": 0}
        real = backends_mod._calibration_time

        def counting(backend):
            calls["n"] += 1
            return real(backend)

        monkeypatch.setattr(backends_mod, "_calibration_time", counting)
        monkeypatch.setattr(backends_mod, "_SELECTED", None)
        return calls

    def test_force_writes_sidecar_then_reload_skips_calibration(
        self, clone_backend, timed, tmp_path
    ):
        import json
        import os

        path = os.environ["REPRO_KERNEL_CALIBRATION"]
        first = select_best(force=True)
        assert timed["n"] >= 2  # every candidate was actually timed
        data = json.loads(open(path).read())
        (key,) = data
        assert "clone_test" in key  # keyed by the candidate set
        assert data[key]["backend"] == first.name
        # A fresh process (cache cleared) reads the verdict, never re-times.
        backends_mod._SELECTED = None
        timed["n"] = 0
        assert select_best() is first
        assert timed["n"] == 0

    def test_corrupt_sidecar_reads_as_miss(self, clone_backend, timed):
        import os
        from pathlib import Path

        path = Path(os.environ["REPRO_KERNEL_CALIBRATION"])
        path.write_text("{not json")
        best = select_best()
        assert timed["n"] >= 2  # recalibrated
        assert best.selectable
        # ...and the rewrite healed the file.
        import json

        assert json.loads(path.read_text())

    def test_stored_winner_outside_candidate_set_recalibrates(
        self, clone_backend, timed
    ):
        import json
        import os
        from pathlib import Path

        candidates = [
            b for b in backends_mod.available_backends() if b.selectable
        ]
        key = backends_mod._calibration_key(candidates)
        Path(os.environ["REPRO_KERNEL_CALIBRATION"]).write_text(
            json.dumps({key: {"backend": "uninstalled_backend"}})
        )
        select_best()
        assert timed["n"] >= 2  # stale verdict ignored, not trusted

    def test_empty_env_var_disables_persistence(
        self, clone_backend, timed, monkeypatch
    ):
        monkeypatch.setenv(backends_mod.CALIBRATION_ENV_VAR, "")
        assert backends_mod._calibration_path() is None
        best = select_best(force=True)
        assert best.selectable  # selection works, nothing persisted
        backends_mod._SELECTED = None
        timed["n"] = 0
        select_best()
        assert timed["n"] >= 2  # no sidecar to answer from

    def test_single_candidate_skips_calibration_and_sidecar(
        self, timed, monkeypatch
    ):
        import os
        from pathlib import Path

        only = backends_mod.get_backend("numpy_batched")
        monkeypatch.setattr(
            backends_mod, "available_backends", lambda: [only]
        )
        assert select_best(force=True) is only
        assert timed["n"] == 0
        assert not Path(os.environ["REPRO_KERNEL_CALIBRATION"]).exists()


class _SpyOptimizer:
    """Wraps an OPTIMIZERS entry, recording the kwargs the model passed."""

    def __init__(self, real):
        self.real = real
        self.accepts_kernel = getattr(real, "accepts_kernel", False)
        self.seen: dict = {}

    def __call__(self, *args, **kwargs):
        self.seen = {
            "plan": kwargs.get("plan"),
            "has_factors": kwargs.get("factors") is not None,
            "kernel": kwargs.get("kernel"),
        }
        return self.real(*args, **kwargs)


@pytest.fixture
def spy_als(monkeypatch):
    from repro.core import model as model_mod

    spy = _SpyOptimizer(model_mod.OPTIMIZERS["als"])
    monkeypatch.setitem(model_mod.OPTIMIZERS, "als", spy)
    return spy


class TestCapabilityGates:
    """The model layer must gate on capability flags, not backend names."""

    def test_plan_reuse_follows_capability_not_name(self, spy_als,
                                                    clone_backend):
        # A plan-reuse backend under a non-"batched" name still gets the
        # fit-wide plan (regression: the old gate compared the string).
        X, y = _data()
        m = CPRModel(cells=4, rank=2, max_sweeps=4, kernel="clone_test")
        m.fit(X, y)
        assert spy_als.seen["plan"] is not None
        assert spy_als.seen["plan"] is m._plan_
        assert m.fit_backend_ == "clone_test"

    def test_no_plan_without_capability(self, spy_als):
        class NoPlanProbe(NumpyBatchedBackend):
            name = "noplan_probe"
            aliases = ()
            supports_plan_reuse = False

        X, y = _data()
        m = CPRModel(cells=4, rank=2, max_sweeps=4, kernel=NoPlanProbe())
        m.fit(X, y)
        assert spy_als.seen["plan"] is None
        assert m._plan_ is None  # the model never built one
        assert m.fit_backend_ == "noplan_probe"

    def test_plan_reused_across_partial_fit(self, spy_als):
        X, y = _data()
        m = CPRModel(cells=4, rank=2, max_sweeps=4, kernel="numpy_batched")
        m.fit(X, y)
        plan = m._plan_
        assert plan is not None
        m.partial_fit(X[:40], y[:40])  # known cells: same index set
        assert spy_als.seen["plan"] is plan

    def test_warm_start_dropped_without_partial_fit_support(self, spy_als):
        class ColdProbe(NumpyBatchedBackend):
            name = "cold_probe"
            aliases = ()
            supports_partial_fit = False

        X, y = _data()
        m = CPRModel(cells=4, rank=2, max_sweeps=4, kernel=ColdProbe())
        m.fit(X, y)
        m.partial_fit(X[:40], y[:40])
        # The capability gate popped the warm-start factors: cold refit.
        assert spy_als.seen["has_factors"] is False

    def test_warm_start_kept_with_partial_fit_support(self, spy_als):
        X, y = _data()
        m = CPRModel(cells=4, rank=2, max_sweeps=4, kernel="numpy_batched")
        m.fit(X, y)
        m.partial_fit(X[:40], y[:40])
        assert spy_als.seen["has_factors"] is True

    def test_kernel_option_rejected_for_non_kernel_optimizers(self):
        X, y = _data()
        with pytest.raises(ValueError, match="no kernel backends"):
            CPRModel(cells=4, rank=2, optimizer="sgd", max_sweeps=4,
                     kernel="batched").fit(X, y)

    def test_ccd_reuses_plan_without_backends(self):
        X, y = _data()
        m = CPRModel(cells=4, rank=2, optimizer="ccd", max_sweeps=8).fit(X, y)
        assert m.fit_backend_ is None  # no kernel backends for CCD
        plan = m._plan_
        assert plan is not None
        m.partial_fit(X[:40], y[:40])
        assert m._plan_ is plan


class TestAttribution:
    """``fit_backend_`` flows through persistence, manifests, and stats."""

    def test_fit_records_resolved_backend(self):
        X, y = _data()
        m = CPRModel(cells=4, rank=2, max_sweeps=4).fit(X, y)
        assert m.fit_backend_ in backend_names()
        assert m.describe()["fit_backend"] == m.fit_backend_

    def test_backend_survives_serialization_round_trip(self):
        from repro.utils.serialization import dumps_model, loads_model

        X, y = _data()
        m = CPRModel(cells=4, rank=2, max_sweeps=4, kernel="reference")
        m.fit(X, y)
        restored = loads_model(dumps_model(m))
        assert restored.fit_backend_ == "reference"

    def test_registry_manifest_records_backend(self, tmp_path):
        from repro.serve import ModelRegistry

        X, y = _data()
        m = CPRModel(cells=4, rank=2, max_sweeps=4).fit(X, y)
        mv = ModelRegistry(tmp_path).publish("m", m)
        assert mv.meta["kernel_backend"] == m.fit_backend_

    def test_explicit_manifest_backend_not_overwritten(self, tmp_path):
        from repro.serve import ModelRegistry

        X, y = _data()
        m = CPRModel(cells=4, rank=2, max_sweeps=4).fit(X, y)
        mv = ModelRegistry(tmp_path).publish(
            "m", m, meta={"kernel_backend": "pinned"}
        )
        assert mv.meta["kernel_backend"] == "pinned"

    def test_engine_stats_report_backend(self):
        from repro.serve.engine import PredictionEngine

        X, y = _data()
        m = CPRModel(cells=4, rank=2, max_sweeps=4).fit(X, y)
        assert PredictionEngine(m).stats()["fit_backend"] == m.fit_backend_

    def test_trainer_and_session_report_backend(self):
        from repro.stream.pipeline import StreamSession

        X, y = _data()
        session = StreamSession(
            None, "m",
            lambda: CPRModel(cells=4, rank=2, max_sweeps=4),
        )
        session.observe(X, y)
        backend = session.trainer.model.fit_backend_
        assert backend in backend_names()
        assert session.trainer.to_record()["kernel_backend"] == backend
        assert session.summary()["kernel_backend"] == backend

    def test_fleet_config_round_trips_canonical_name(self, tmp_path):
        from repro.serve import ServeFleet

        fleet = ServeFleet(str(tmp_path), workers=1, kernel_backend="batched")
        # Canonicalized through the registry before reaching workers.
        assert fleet._cfg["kernel_backend"] == "numpy_batched"
        with pytest.raises(ValueError, match="registered backends"):
            ServeFleet(str(tmp_path), workers=1, kernel_backend="bogus")

    def test_base_protocol_hooks_are_abstract(self):
        b = KernelBackend()
        with pytest.raises(NotImplementedError):
            b.prepare_als((2, 2), np.zeros((1, 2), dtype=np.intp), np.ones(1))
        with pytest.raises(NotImplementedError):
            b.prepare_amn((2, 2), np.zeros((1, 2), dtype=np.intp), np.ones(1))

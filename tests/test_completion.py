"""Tests for CP state utilities and the four completion optimizers."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.completion import (
    OPTIMIZERS,
    CompletionResult,
    complete_als,
    complete_amn,
    complete_ccd,
    complete_sgd,
    cp_eval,
    cp_full,
    cp_size_bytes,
    init_factors,
    init_positive_factors,
    khatri_rao_rows,
)
from repro.core.completion.objectives import (
    frobenius_penalty,
    logq_objective,
    ls_objective,
)


def _random_lowrank(shape, rank, seed=0, positive=False):
    """A dense tensor of exact CP rank <= rank, plus observation sets."""
    gen = np.random.default_rng(seed)
    if positive:
        factors = [np.exp(gen.normal(0, 0.5, (I, rank))) for I in shape]
    else:
        factors = [gen.normal(0, 1, (I, rank)) for I in shape]
    dense = cp_full(factors)
    return factors, dense


def _observe_all(shape):
    grids = np.meshgrid(*[np.arange(I) for I in shape], indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=1)


class TestState:
    def test_init_factors_shapes(self):
        fs = init_factors((3, 4, 5), 2, rng=np.random.default_rng(0))
        assert [f.shape for f in fs] == [(3, 2), (4, 2), (5, 2)]

    def test_init_factors_scaled_products(self):
        """Component products should be O(1/R) regardless of order."""
        for d in (2, 6, 10):
            fs = init_factors((4,) * d, 8, rng=np.random.default_rng(1))
            idx = np.zeros((64, d), dtype=np.intp)
            idx[:, 0] = np.arange(64) % 4
            vals = cp_eval(fs, idx)
            assert np.all(np.abs(vals) < 50)
            assert np.mean(np.abs(vals)) > 0.01

    def test_init_rank_invalid(self):
        with pytest.raises(ValueError):
            init_factors((3, 3), 0)

    def test_init_positive(self):
        fs = init_positive_factors((3, 4), 2, rng=np.random.default_rng(0), mean=5.0)
        assert all(np.all(f > 0) for f in fs)
        idx = _observe_all((3, 4))
        assert np.median(cp_eval(fs, idx)) == pytest.approx(5.0, rel=0.5)

    def test_init_positive_invalid_mean(self):
        with pytest.raises(ValueError):
            init_positive_factors((3, 3), 2, mean=0.0)

    def test_cp_eval_matches_cp_full(self):
        factors, dense = _random_lowrank((3, 4, 5), 2)
        idx = _observe_all((3, 4, 5))
        np.testing.assert_allclose(cp_eval(factors, idx), dense.ravel())

    def test_cp_eval_bad_indices_shape(self):
        factors, _ = _random_lowrank((3, 4), 2)
        with pytest.raises(ValueError):
            cp_eval(factors, np.zeros((5, 3), dtype=int))

    def test_khatri_rao_rows(self):
        factors, _ = _random_lowrank((3, 4, 5), 2, seed=1)
        idx = _observe_all((3, 4, 5))
        K = khatri_rao_rows(factors, idx, skip=1)
        manual = factors[0][idx[:, 0]] * factors[2][idx[:, 2]]
        np.testing.assert_allclose(K, manual)

    def test_cp_size_bytes(self):
        factors, _ = _random_lowrank((3, 4, 5), 2)
        assert cp_size_bytes(factors) == 8 * 2 * (3 + 4 + 5)

    def test_result_rank(self):
        factors, _ = _random_lowrank((3, 4), 2)
        assert CompletionResult(factors=factors).rank == 2


class TestObjectives:
    def test_penalty(self):
        fs = [np.ones((2, 1)), np.ones((3, 1))]
        assert frobenius_penalty(fs, 0.5) == pytest.approx(0.5 * 5)

    def test_ls_objective_zero_at_exact(self):
        factors, dense = _random_lowrank((3, 4), 2)
        idx = _observe_all((3, 4))
        assert ls_objective(factors, idx, dense.ravel(), 0.0) == pytest.approx(0.0)

    def test_logq_objective_zero_at_exact(self):
        factors, dense = _random_lowrank((3, 4), 2, positive=True)
        idx = _observe_all((3, 4))
        assert logq_objective(factors, idx, dense.ravel(), 0.0) == pytest.approx(
            0.0, abs=1e-20
        )


class TestALS:
    def test_recovers_lowrank_fully_observed(self):
        _, dense = _random_lowrank((6, 7, 5), 2, seed=3)
        idx = _observe_all(dense.shape)
        res = complete_als(dense.shape, idx, dense.ravel(), rank=3,
                           regularization=1e-10, max_sweeps=200, tol=1e-14, seed=0)
        np.testing.assert_allclose(cp_eval(res.factors, idx), dense.ravel(),
                                   atol=1e-5 * np.abs(dense).max())

    def test_recovers_lowrank_partially_observed(self):
        _, dense = _random_lowrank((8, 8, 8), 2, seed=4)
        gen = np.random.default_rng(5)
        idx_all = _observe_all(dense.shape)
        sel = gen.choice(len(idx_all), size=300, replace=False)
        idx = idx_all[sel]
        res = complete_als(dense.shape, idx, dense.ravel()[sel], rank=2,
                           regularization=1e-9, max_sweeps=300, tol=1e-14, seed=0)
        # generalization to unobserved entries
        pred = cp_eval(res.factors, idx_all)
        rel = np.abs(pred - dense.ravel()) / (np.abs(dense.ravel()) + 1e-9)
        assert np.median(rel) < 0.05

    def test_monotone_history_unscaled_rows(self):
        _, dense = _random_lowrank((6, 6, 6), 3, seed=6)
        gen = np.random.default_rng(7)
        idx_all = _observe_all(dense.shape)
        sel = gen.choice(len(idx_all), size=150, replace=False)
        res = complete_als(dense.shape, idx_all[sel], dense.ravel()[sel],
                           rank=2, regularization=1e-3, max_sweeps=40,
                           scale_rows=False, seed=1)
        h = np.asarray(res.history)
        assert np.all(np.diff(h) <= 1e-10 * np.maximum(h[:-1], 1e-30))

    def test_warm_start_continues(self):
        _, dense = _random_lowrank((5, 5), 2, seed=8)
        idx = _observe_all(dense.shape)
        r1 = complete_als(dense.shape, idx, dense.ravel(), rank=2,
                          max_sweeps=2, tol=0.0, seed=0)
        r2 = complete_als(dense.shape, idx, dense.ravel(), rank=2,
                          max_sweeps=2, tol=0.0, factors=r1.factors)
        assert r2.history[-1] <= r1.history[-1] + 1e-12

    def test_input_validation(self):
        with pytest.raises(ValueError):
            complete_als((4,), np.zeros((2, 1), dtype=int), np.ones(2), rank=1)
        with pytest.raises(ValueError):
            complete_als((4, 4), np.zeros((0, 2), dtype=int), np.ones(0), rank=1)
        with pytest.raises(ValueError):
            complete_als((4, 4), np.zeros((2, 2), dtype=int), np.ones(3), rank=1)

    def test_unobserved_rows_untouched(self):
        idx = np.array([[0, 0], [1, 1]], dtype=np.intp)
        vals = np.array([1.0, 2.0])
        init = init_factors((3, 2), 1, rng=np.random.default_rng(0))
        before = init[0][2].copy()
        res = complete_als((3, 2), idx, vals, rank=1, max_sweeps=3,
                           factors=[f.copy() for f in init])
        # row 2 of mode 0 has no observations; only rebalancing rescales it.
        after = res.factors[0][2]
        ratio = after / before
        assert np.allclose(ratio, ratio[0])


class TestCCD:
    def test_monotone_history(self):
        _, dense = _random_lowrank((6, 6, 4), 2, seed=9)
        gen = np.random.default_rng(10)
        idx_all = _observe_all(dense.shape)
        sel = gen.choice(len(idx_all), size=100, replace=False)
        res = complete_ccd(dense.shape, idx_all[sel], dense.ravel()[sel],
                           rank=2, regularization=1e-4, max_sweeps=50, seed=2)
        h = np.asarray(res.history)
        assert np.all(np.diff(h) <= 1e-9 * np.maximum(h[:-1], 1e-30))

    def test_reaches_als_quality(self):
        _, dense = _random_lowrank((6, 6), 2, seed=11)
        idx = _observe_all(dense.shape)
        ccd = complete_ccd(dense.shape, idx, dense.ravel(), rank=2,
                           regularization=1e-9, max_sweeps=500, tol=1e-14, seed=0)
        assert ccd.history[-1] < 1e-4 * max(ccd.history[0], 1e-30)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            complete_ccd((3, 3), np.zeros((0, 2), dtype=int), np.ones(0), rank=1)


class TestSGD:
    def test_objective_decreases(self):
        _, dense = _random_lowrank((8, 8), 2, seed=12)
        idx = _observe_all(dense.shape)
        res = complete_sgd(dense.shape, idx, dense.ravel(), rank=2,
                           regularization=0.0, max_sweeps=100, seed=3,
                           learning_rate=0.05)
        assert res.history[-1] < 0.3 * res.history[0]

    def test_seeded_reproducible(self):
        _, dense = _random_lowrank((6, 6), 2, seed=13)
        idx = _observe_all(dense.shape)
        a = complete_sgd(dense.shape, idx, dense.ravel(), rank=2, seed=4,
                         max_sweeps=10)
        b = complete_sgd(dense.shape, idx, dense.ravel(), rank=2, seed=4,
                         max_sweeps=10)
        np.testing.assert_allclose(a.history, b.history)


class TestAMN:
    def test_factors_strictly_positive(self):
        _, dense = _random_lowrank((5, 5, 4), 2, seed=14, positive=True)
        idx = _observe_all(dense.shape)
        res = complete_amn(dense.shape, idx, dense.ravel(), rank=2,
                           max_sweeps=1, newton_iters=8, seed=0)
        assert all(np.all(f > 0) for f in res.factors)

    def test_fits_positive_tensor(self):
        _, dense = _random_lowrank((6, 5, 4), 2, seed=15, positive=True)
        idx = _observe_all(dense.shape)
        res = complete_amn(dense.shape, idx, dense.ravel(), rank=2,
                           regularization=1e-6, max_sweeps=2, newton_iters=15,
                           seed=1)
        assert res.history[-1] < 0.05 * res.history[0]

    def test_rejects_nonpositive_values(self):
        with pytest.raises(ValueError):
            complete_amn((3, 3), np.array([[0, 0]], dtype=np.intp),
                         np.array([-1.0]), rank=1)

    def test_objective_mostly_decreasing(self):
        _, dense = _random_lowrank((5, 5), 2, seed=16, positive=True)
        idx = _observe_all(dense.shape)
        res = complete_amn(dense.shape, idx, dense.ravel(), rank=2,
                           max_sweeps=1, newton_iters=10, seed=2)
        assert res.history[-1] <= res.history[0]


class TestRegistry:
    def test_all_optimizers_registered(self):
        assert set(OPTIMIZERS) == {
            "als",
            "als_adaptive",
            "als_reg",
            "ccd",
            "sgd",
            "amn",
            "lm",
        }


@settings(max_examples=25, deadline=None)
@given(
    d=st.integers(2, 4),
    rank=st.integers(1, 3),
    seed=st.integers(0, 1000),
)
def test_property_cp_eval_linear_in_each_factor(d, rank, seed):
    """Scaling one factor by c scales every model value by c."""
    gen = np.random.default_rng(seed)
    shape = tuple(gen.integers(2, 5) for _ in range(d))
    factors = [gen.normal(size=(I, rank)) for I in shape]
    idx = np.stack([gen.integers(0, I, size=20) for I in shape], axis=1)
    base = cp_eval(factors, idx)
    c = 3.0
    factors[0] = factors[0] * c
    np.testing.assert_allclose(cp_eval(factors, idx), c * base, rtol=1e-10)


class TestLM:
    def test_recovers_lowrank_fully_observed(self):
        from repro.core.completion import complete_lm

        _, dense = _random_lowrank((6, 5, 4), 2, seed=21)
        idx = _observe_all(dense.shape)
        res = complete_lm(dense.shape, idx, dense.ravel(), rank=2,
                          regularization=1e-10, max_sweeps=60, tol=1e-14, seed=0)
        np.testing.assert_allclose(cp_eval(res.factors, idx), dense.ravel(),
                                   atol=1e-4 * np.abs(dense).max())

    def test_monotone_accepted_steps(self):
        from repro.core.completion import complete_lm

        _, dense = _random_lowrank((6, 6), 2, seed=22)
        idx = _observe_all(dense.shape)
        res = complete_lm(dense.shape, idx, dense.ravel(), rank=2,
                          max_sweeps=20, seed=1)
        h = np.asarray(res.history)
        assert np.all(np.diff(h) <= 0)  # only accepted steps are recorded

    def test_partially_observed_generalizes(self):
        from repro.core.completion import complete_lm

        _, dense = _random_lowrank((7, 7, 5), 2, seed=23)
        gen = np.random.default_rng(24)
        idx_all = _observe_all(dense.shape)
        sel = gen.choice(len(idx_all), size=180, replace=False)
        res = complete_lm(dense.shape, idx_all[sel], dense.ravel()[sel],
                          rank=2, regularization=1e-9, max_sweeps=80,
                          tol=1e-14, seed=2)
        pred = cp_eval(res.factors, idx_all)
        rel = np.abs(pred - dense.ravel()) / (np.abs(dense.ravel()) + 1e-9)
        assert np.median(rel) < 0.1

    def test_param_guard(self):
        from repro.core.completion import complete_lm

        with pytest.raises(MemoryError):
            complete_lm((512, 512), np.zeros((1, 2), dtype=np.intp),
                        np.ones(1), rank=8, max_params=1000)

    def test_via_cpr_model(self, smooth_2d):
        from repro.core import CPRModel

        X, y = smooth_2d
        m = CPRModel(cells=8, rank=2, optimizer="lm", seed=0,
                     max_sweeps=40).fit(X, y)
        assert m.score(X, y) < 0.15

"""Tests for the elastic work-queue executor (``repro.runtime.queue``).

The contract under test: the queue changes *who* runs a job, never what
the job produces.  Claims are exactly-once among racers (O_CREAT|O_EXCL),
stale leases are reclaimed by exactly one peer, a SIGKILLed worker loses
nothing, and a queue run of a sweep is record-identical to a sequential
run of the same specs — including under an injected fault storm.
"""
from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro import faults
from repro.faults import FaultPlan
from repro.runtime import JobSpec, ResultCache, Runtime, WorkQueue

_PROBE = "repro.runtime.queue:probe_job"

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="queue workers are forked"
)


def probe_specs(n: int, sleep_s: float = 0.0) -> list[JobSpec]:
    return [JobSpec(_PROBE, {"value": i, "sleep_s": sleep_s}) for i in range(n)]


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    faults.clear()


class TestClaimProtocol:
    def test_racing_threads_claim_exactly_once(self, tmp_path):
        queue = WorkQueue(tmp_path / "spool")
        (key,) = queue.submit(probe_specs(1))
        barrier = threading.Barrier(8)
        wins = []

        def racer():
            barrier.wait()
            if queue.try_claim(key):
                wins.append(threading.get_ident())

        threads = [threading.Thread(target=racer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        assert queue.lease_owner(key)["pid"] == os.getpid()

    @needs_fork
    def test_racing_processes_claim_exactly_once(self, tmp_path):
        queue = WorkQueue(tmp_path / "spool")
        keys = queue.submit(probe_specs(16))
        ctx = multiprocessing.get_context("fork")
        results = ctx.Queue()

        def racer():
            mine = [k for k in keys if WorkQueue(tmp_path / "spool").try_claim(k)]
            results.put(mine)

        procs = [ctx.Process(target=racer) for _ in range(2)]
        for p in procs:
            p.start()
        won = [results.get(timeout=30) for _ in procs]
        for p in procs:
            p.join(timeout=30)
        # Every key claimed by exactly one racer, none by both.
        assert sorted(won[0] + won[1]) == sorted(keys)
        assert not set(won[0]) & set(won[1])

    def test_release_frees_the_lease(self, tmp_path):
        queue = WorkQueue(tmp_path / "spool")
        (key,) = queue.submit(probe_specs(1))
        assert queue.try_claim(key)
        assert not queue.try_claim(key)
        queue.release(key)
        assert queue.try_claim(key)


class TestStaleReclaim:
    def _backdate(self, queue, key, by_s: float) -> None:
        path = queue._lease_path(key)
        old = time.time() - by_s
        os.utime(path, (old, old))

    def test_fresh_lease_is_not_reclaimable(self, tmp_path):
        queue = WorkQueue(tmp_path / "spool", lease_ttl_s=5.0)
        (key,) = queue.submit(probe_specs(1))
        assert queue.try_claim(key)
        assert not queue.reclaim_if_stale(key)

    def test_stale_lease_reclaimed_once(self, tmp_path):
        queue = WorkQueue(tmp_path / "spool", lease_ttl_s=1.0)
        (key,) = queue.submit(probe_specs(1))
        assert queue.try_claim(key)
        self._backdate(queue, key, by_s=10.0)
        assert queue.reclaim_if_stale(key)
        # The lease is gone: the second reclaimer finds nothing.
        assert not queue.reclaim_if_stale(key)
        assert queue.try_claim(key)
        assert queue.reclaimed == 1

    def test_racing_reclaimers_one_winner(self, tmp_path):
        queue = WorkQueue(tmp_path / "spool", lease_ttl_s=0.5)
        (key,) = queue.submit(probe_specs(1))
        assert queue.try_claim(key)
        self._backdate(queue, key, by_s=10.0)
        barrier = threading.Barrier(6)
        wins = []

        def racer():
            barrier.wait()
            if queue.reclaim_if_stale(key):
                wins.append(1)

        threads = [threading.Thread(target=racer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        # No tombstone debris left behind.
        assert list(queue.leases_dir.glob(".reclaim-*")) == []

    def test_heartbeat_keeps_lease_fresh(self, tmp_path):
        queue = WorkQueue(tmp_path / "spool", lease_ttl_s=0.4)
        specs = probe_specs(1, sleep_s=1.0)
        (key,) = queue.submit(specs)
        done = queue.work(max_jobs=1)
        # The job slept 2.5x the TTL; without heartbeats the driver-side
        # scan below would have been able to reclaim mid-run.
        assert done == 1
        assert queue.cache.get(specs[0]) == {"value": 0}
        assert queue.lease_owner(key) is None


class TestWorkLoop:
    def test_submit_is_idempotent_and_cache_aware(self, tmp_path):
        queue = WorkQueue(tmp_path / "spool")
        specs = probe_specs(3)
        assert len(queue.submit(specs)) == 3
        assert len(queue.submit(specs)) == 3  # same keys, same files
        assert len(list(queue.specs_dir.glob("*.json"))) == 3
        queue.work()
        # Everything cached: nothing left to submit or run.
        assert queue.submit(specs) == []
        assert queue.pending() == []

    def test_work_drains_and_leaves_no_leases(self, tmp_path):
        queue = WorkQueue(tmp_path / "spool")
        specs = probe_specs(8)
        queue.submit(specs)
        assert queue.work() == 8
        for i, spec in enumerate(specs):
            assert queue.cache.get(spec) == {"value": i}
        assert list(queue.leases_dir.iterdir()) == []

    def test_poison_spec_fails_once_and_stops_spreading(self, tmp_path):
        queue = WorkQueue(tmp_path / "spool")
        bad = JobSpec(_PROBE, {"value": 7, "fail": True})
        queue.submit(probe_specs(2) + [bad])
        assert queue.work() == 3
        failures = queue.failures()
        assert list(failures) == [bad.key]
        assert "probe_job failed on demand" in failures[bad.key]["error"]
        # The failure record parks the spec: later workers skip it.
        assert queue.pending() == []
        assert queue.work() == 0


class TestRuntimeIntegration:
    def _result_map(self, cache: ResultCache, specs) -> dict:
        return {s.key: cache.get(s) for s in specs}

    def test_queue_run_matches_sequential_run(self, tmp_path):
        specs = probe_specs(12)
        seq = Runtime(jobs=1, cache_dir=tmp_path / "seq")
        seq_results = seq.run(specs)

        spool = tmp_path / "spool"
        queued = Runtime(queue_dir=spool, queue_workers=2, queue_lease_ttl_s=5.0)
        queue_results = queued.run(specs)

        assert json.dumps(queue_results, sort_keys=True) == json.dumps(
            seq_results, sort_keys=True
        )
        # Record-for-record identical payloads in both caches.
        assert self._result_map(seq.cache, specs) == self._result_map(
            ResultCache(spool / "results"), specs
        )
        assert queued.executed == 12
        # Warm re-run: all hits, no worker ever spawned.
        warm = Runtime(queue_dir=spool, queue_workers=2)
        assert warm.run(specs) == seq_results
        assert warm.hits == 12 and warm.executed == 0

    def test_queue_failure_surfaces_the_job_error(self, tmp_path):
        bad = JobSpec(_PROBE, {"value": 1, "fail": True})
        runtime = Runtime(queue_dir=tmp_path / "spool", queue_workers=1)
        with pytest.raises(RuntimeError, match="probe_job failed on demand"):
            runtime.run(probe_specs(2) + [bad])

    def test_queue_quarantine_keeps_good_results(self, tmp_path):
        bad = JobSpec(_PROBE, {"value": 1, "fail": True})
        runtime = Runtime(
            queue_dir=tmp_path / "spool", queue_workers=1, quarantine=True
        )
        results = runtime.run(probe_specs(2) + [bad])
        assert results[0] == {"value": 0} and results[1] == {"value": 1}
        assert results[2] is None
        assert len(runtime.quarantined) == 1


@needs_fork
class TestWorkerFleet:
    def test_sigkill_mid_batch_loses_nothing(self, tmp_path):
        """Kill one of two workers mid-sweep: the survivor reclaims the
        victim's stale lease and the sweep completes with every record
        present and correct — the acceptance invariant."""
        queue = WorkQueue(
            tmp_path / "spool", lease_ttl_s=1.0, poll_interval_s=0.02
        )
        specs = probe_specs(10, sleep_s=0.15)
        keys = queue.submit(specs)
        workers = queue.spawn_workers(2)
        try:
            time.sleep(0.3)  # let both workers claim and start jobs
            os.kill(workers[0].pid, signal.SIGKILL)
            queue.drain(keys, workers=[workers[1]], timeout_s=120.0)
        finally:
            for w in workers:
                w.terminate()
                w.join(timeout=10)
        for i, spec in enumerate(specs):
            assert queue.cache.get(spec) == {"value": i}
        assert queue.failures() == {}
        # The victim's lease was reclaimed, not leaked.
        leases = [p for p in queue.leases_dir.iterdir()]
        assert leases == []

    def test_all_workers_dead_raises(self, tmp_path):
        queue = WorkQueue(
            tmp_path / "spool", lease_ttl_s=0.5, poll_interval_s=0.02
        )
        keys = queue.submit(probe_specs(4, sleep_s=5.0))
        workers = queue.spawn_workers(2)
        try:
            time.sleep(0.2)
            for w in workers:
                os.kill(w.pid, signal.SIGKILL)
            for w in workers:
                w.join(timeout=10)
            with pytest.raises(RuntimeError, match="queue workers exited"):
                queue.drain(keys, workers=workers, timeout_s=30.0)
        finally:
            for w in workers:
                w.terminate()
                w.join(timeout=10)


@needs_fork
class TestQueueChaos:
    """Lease-expiry storms under ``REPRO_FAULTS``-seeded injection."""

    def _chaos_run(self, spool, plan: FaultPlan) -> dict:
        """One full 2-worker sweep with ``plan`` active; returns
        ``key -> result`` for every spec."""
        faults.install(plan)
        try:
            # Short TTL + suppressed heartbeats = constant reclaim churn.
            queue = WorkQueue(spool, lease_ttl_s=0.3, poll_interval_s=0.02)
            specs = probe_specs(8, sleep_s=0.2)
            keys = queue.submit(specs)
            workers = queue.spawn_workers(2)  # fork: plan inherited
            try:
                queue.drain(keys, workers=workers, timeout_s=120.0)
            finally:
                for w in workers:
                    w.terminate()
                    w.join(timeout=10)
            return {s.key: queue.cache.get(s) for s in specs}
        finally:
            faults.clear()

    def test_lease_expiry_storm_replays_bit_identically(self, tmp_path):
        plan_json = (
            FaultPlan(seed=0)
            .on("queue.heartbeat", "error", prob=0.8)
            .on("queue.claim", "error", prob=0.2)
            .to_json()
        )
        runs = []
        for i in range(2):
            plan = FaultPlan.from_json(plan_json)
            assert json.loads(plan_json) == json.loads(plan.to_json())
            runs.append(self._chaos_run(tmp_path / f"spool{i}", plan))
        assert all(r is not None for r in runs[0].values())
        # Same seed, same storm, same records — byte-for-byte at the
        # canonical-JSON level.
        assert json.dumps(runs[0], sort_keys=True) == json.dumps(
            runs[1], sort_keys=True
        )

    def test_reclaim_fault_does_not_lose_work(self, tmp_path):
        faults.install(FaultPlan(seed=1).on("queue.reclaim", "error", prob=0.5))
        queue = WorkQueue(
            tmp_path / "spool", lease_ttl_s=0.2, poll_interval_s=0.02
        )
        specs = probe_specs(6, sleep_s=0.05)
        queue.submit(specs)
        # Pre-plant a stale lease so the loop must reclaim through faults.
        stale = specs[0].key
        assert queue.try_claim(stale)
        old = time.time() - 60
        os.utime(queue._lease_path(stale), (old, old))
        queue.work()
        for i, spec in enumerate(specs):
            assert queue.cache.get(spec) == {"value": i}

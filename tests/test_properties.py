"""Cross-cutting property-based tests on model-level invariants."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CPRModel
from repro.core.completion import (
    complete_als,
    complete_als_adaptive,
    complete_als_regularized,
    complete_amn,
    registered_backends,
)
from repro.core.grid import LogMode, TensorGrid, UniformMode
from repro.core.tensor import ObservedTensor

# Every registered kernel backend, skip-marked when its availability
# probe fails (e.g. numba_jit without numba installed) — the metamorphic
# invariants below hold per backend, so registering a new one subjects
# it to this suite automatically.
KERNELS = [
    pytest.param(
        b.name,
        id=b.name,
        marks=[] if b.available() else [pytest.mark.skip(
            reason=f"backend {b.name} unavailable: {b.unavailable_reason()}"
        )],
    )
    for b in registered_backends()
]


def _make_data(seed, n=400):
    gen = np.random.default_rng(seed)
    X = np.exp(gen.uniform(0.0, np.log(64.0), size=(n, 2)))
    y = 1e-3 * X[:, 0] ** 1.2 * X[:, 1] ** 0.7 * np.exp(
        gen.normal(0, 0.02, size=n)
    )
    return X, y


class TestModelInvariants:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_sample_order_invariance(self, seed):
        """Fitting on a permutation of the data gives the same model."""
        X, y = _make_data(seed)
        gen = np.random.default_rng(seed + 1)
        perm = gen.permutation(len(y))
        a = CPRModel(cells=6, rank=2, seed=0).fit(X, y)
        b = CPRModel(cells=6, rank=2, seed=0).fit(X[perm], y[perm])
        np.testing.assert_allclose(a.predict(X[:30]), b.predict(X[:30]), rtol=1e-8)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 100),
        scale=st.floats(1e-3, 1e3),
    )
    def test_time_unit_equivariance(self, seed, scale):
        """Rescaling execution times rescales predictions exactly.

        The log_mse model absorbs a global factor into its offset, so
        predictions must scale linearly with the unit of time (seconds vs
        milliseconds must not change model quality).
        """
        X, y = _make_data(seed)
        a = CPRModel(cells=6, rank=2, seed=0).fit(X, y)
        b = CPRModel(cells=6, rank=2, seed=0).fit(X, y * scale)
        np.testing.assert_allclose(
            b.predict(X[:30]), scale * a.predict(X[:30]), rtol=1e-7
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_predictions_always_positive_finite(self, seed):
        X, y = _make_data(seed)
        m = CPRModel(cells=6, rank=2, seed=seed).fit(X, y)
        gen = np.random.default_rng(seed)
        Xq = np.exp(gen.uniform(0.0, np.log(64.0), size=(100, 2)))
        pred = m.predict(Xq)
        assert np.all(pred > 0) and np.all(np.isfinite(pred))

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 50))
    def test_mlogq2_model_positive_everywhere(self, seed):
        X, y = _make_data(seed)
        m = CPRModel(cells=5, rank=2, loss="mlogq2", max_sweeps=1,
                     newton_iters=6, seed=seed).fit(X, y)
        gen = np.random.default_rng(seed)
        # include out-of-domain queries (extrapolation path)
        Xq = np.exp(gen.uniform(0.0, np.log(512.0), size=(60, 2)))
        pred = m.predict(Xq)
        assert np.all(pred > 0) and np.all(np.isfinite(pred))


def _observations(seed, d=3, positive=False):
    """A seeded random completion problem with repeated cells."""
    gen = np.random.default_rng(seed)
    shape = tuple(gen.integers(4, 8, size=d))
    nnz = 40 * d
    idx = np.stack([gen.integers(0, I, nnz) for I in shape], axis=1)
    vals = gen.normal(0.5, 0.4, nnz)
    if positive:
        vals = np.exp(vals)
    return shape, np.ascontiguousarray(idx), vals


class TestCompletionInvariants:
    """Seeded metamorphic invariants of the ALS/AMN fits, per kernel."""

    @pytest.mark.parametrize("kernel", KERNELS)
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_als_observation_permutation_invariance(self, kernel, seed):
        """Fitting a permutation of the observations gives the same factors.

        The batched kernel re-sorts per mode and the reference kernel
        loops rows in index order, so the only permutation sensitivity
        left is float summation order within a cell's segment — bounded
        far below the asserted tolerance.
        """
        shape, idx, vals = _observations(seed)
        perm = np.random.default_rng(seed + 1).permutation(len(vals))
        kw = dict(rank=2, regularization=1e-5, max_sweeps=4, tol=0.0,
                  seed=0, kernel=kernel)
        a = complete_als(shape, idx, vals, **kw)
        b = complete_als(shape, idx[perm], vals[perm], **kw)
        for U, V in zip(a.factors, b.factors):
            np.testing.assert_allclose(V, U, rtol=0,
                                       atol=1e-7 * np.abs(U).max())

    @pytest.mark.parametrize("kernel", KERNELS)
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_amn_observation_permutation_invariance(self, kernel, seed):
        shape, idx, vals = _observations(seed, positive=True)
        perm = np.random.default_rng(seed + 1).permutation(len(vals))
        kw = dict(rank=2, regularization=1e-5, max_sweeps=1, tol=1e-6,
                  seed=0, newton_iters=4, barrier_min=1e-1, kernel=kernel)
        a = complete_amn(shape, idx, vals, **kw)
        b = complete_amn(shape, idx[perm], vals[perm], **kw)
        for U, V in zip(a.factors, b.factors):
            np.testing.assert_allclose(V, U, rtol=0,
                                       atol=1e-7 * np.abs(U).max())

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("loss", ["log_mse", "mlogq2"])
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 200), scale=st.floats(1e-2, 1e2))
    def test_target_scale_equivariance_per_kernel(
        self, kernel, loss, seed, scale
    ):
        """Rescaling the targets rescales predictions linearly, per kernel.

        Both models absorb a global factor into ``offset_`` (the mean
        log-time), leaving the factor optimization identical — so this
        holds for the positive AMN model too, not just log-MSE/ALS.
        """
        X, y = _make_data(seed, n=250)
        kw = dict(cells=5, rank=2, seed=0, loss=loss, kernel=kernel)
        if loss == "mlogq2":
            kw.update(max_sweeps=1, newton_iters=5, barrier_min=1e-1)
        a = CPRModel(**kw).fit(X, y)
        b = CPRModel(**kw).fit(X, y * scale)
        np.testing.assert_allclose(
            b.predict(X[:30]), scale * a.predict(X[:30]), rtol=1e-7
        )

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("loss", ["log_mse", "mlogq2"])
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_partial_fit_zero_new_observations_idempotent(
        self, kernel, loss, seed
    ):
        """``partial_fit`` on an empty batch is an exact no-op, per kernel."""
        X, y = _make_data(seed, n=250)
        kw = dict(cells=5, rank=2, seed=0, loss=loss, kernel=kernel)
        if loss == "mlogq2":
            kw.update(max_sweeps=1, newton_iters=5, barrier_min=1e-1)
        m = CPRModel(**kw).fit(X, y)
        before = m.predict(X[:40]).copy()
        m.partial_fit(np.empty((0, 2)), np.empty(0))
        np.testing.assert_array_equal(m.predict(X[:40]), before)

    @pytest.mark.parametrize("kernel", KERNELS)
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_partial_fit_duplicate_data_keeps_cell_means(self, kernel, seed):
        """Re-feeding the training set doubles counts but not cell means.

        The observed tensor is a counts-weighted sufficient statistic:
        duplicating the data must leave every cell mean (and hence the
        completion targets) bit-comparable, so the warm start continues
        from an unchanged objective.
        """
        X, y = _make_data(seed, n=250)
        m = CPRModel(cells=5, rank=2, seed=0, kernel=kernel).fit(X, y)
        values = m.tensor_.values.copy()
        counts = m.tensor_.counts.copy()
        m.partial_fit(X, y)
        np.testing.assert_allclose(m.tensor_.values, values, rtol=1e-12)
        np.testing.assert_array_equal(m.tensor_.counts, 2 * counts)


class TestRegularizedInvariants:
    """Seeded metamorphic invariants of the new regularized/adaptive
    kernels, per backend (same automatic-parametrization discipline as
    :class:`TestCompletionInvariants`)."""

    @pytest.mark.parametrize("kernel", KERNELS)
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_regularized_permutation_invariance(self, kernel, seed):
        """Column penalties don't break observation-order invariance."""
        shape, idx, vals = _observations(seed)
        perm = np.random.default_rng(seed + 1).permutation(len(vals))
        kw = dict(rank=2, regularization=1e-4, max_sweeps=4, tol=0.0,
                  seed=0, kernel=kernel, column_penalties="graded")
        a = complete_als_regularized(shape, idx, vals, **kw)
        b = complete_als_regularized(shape, idx[perm], vals[perm], **kw)
        for U, V in zip(a.factors, b.factors):
            np.testing.assert_allclose(V, U, rtol=0,
                                       atol=1e-7 * np.abs(U).max())

    @pytest.mark.parametrize("kernel", KERNELS)
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_nonnegative_projection_holds(self, kernel, seed):
        """Projected ALS factors stay in the nonnegative orthant."""
        shape, idx, vals = _observations(seed, positive=True)
        res = complete_als_regularized(
            shape, idx, vals, rank=2, regularization=1e-4, max_sweeps=5,
            tol=0.0, seed=0, kernel=kernel, nonnegative=True,
        )
        assert all(np.all(U >= 0) for U in res.factors)
        assert np.isfinite(res.history[-1])

    @pytest.mark.parametrize("kernel", KERNELS)
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 300))
    def test_graded_penalty_shrinks_trailing_components(self, kernel, seed):
        """Heavier penalties shrink what they penalize: under a strongly
        graded ramp the trailing component's magnitude cannot exceed the
        flat-penalty fit's trailing component (norm-product metric)."""
        from repro.core.completion import cp_component_norms

        shape, idx, vals = _observations(seed)
        kw = dict(rank=3, regularization=1e-2, max_sweeps=8, tol=0.0,
                  seed=0, kernel=kernel)
        flat = complete_als_regularized(
            shape, idx, vals, column_penalties=np.ones(3), **kw
        )
        ramp = complete_als_regularized(
            shape, idx, vals, column_penalties=np.array([1.0, 1.0, 400.0]),
            **kw
        )
        flat_tail = cp_component_norms(flat.factors)[-1]
        ramp_tail = cp_component_norms(ramp.factors)[-1]
        assert ramp_tail <= flat_tail * (1 + 1e-9)

    @pytest.mark.parametrize("kernel", KERNELS)
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 300))
    def test_adaptive_rank_within_bounds(self, kernel, seed):
        """The landed rank respects [1, cap] and matches the factors."""
        shape, idx, vals = _observations(seed)
        res = complete_als_adaptive(
            shape, idx, vals, rank="auto", rank_init=2, max_rank=5,
            regularization=1e-5, max_sweeps=5, tol=0.0, seed=0, kernel=kernel,
        )
        landed = res.factors[0].shape[1]
        assert 1 <= landed <= 5
        assert res.rank_trajectory[-1] == landed
        assert all(U.shape[1] == landed for U in res.factors)

    @pytest.mark.parametrize("kernel", KERNELS)
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 300))
    def test_adaptive_degenerate_equals_fixed_als(self, kernel, seed):
        """rank_init == cap, no holdout, no pruning == plain ALS exactly."""
        shape, idx, vals = _observations(seed)
        kw = dict(regularization=1e-5, max_sweeps=4, tol=0.0, seed=0,
                  kernel=kernel)
        fixed = complete_als(shape, idx, vals, rank=2, **kw)
        auto = complete_als_adaptive(
            shape, idx, vals, rank=2, rank_init=2, val_fraction=0.0,
            prune_threshold=0.0, **kw,
        )
        for U, V in zip(fixed.factors, auto.factors):
            np.testing.assert_array_equal(U, V)


class TestTensorInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        cells=st.integers(2, 12),
        n=st.integers(1, 200),
    )
    def test_density_and_mass(self, seed, cells, n):
        gen = np.random.default_rng(seed)
        grid = TensorGrid([
            LogMode("a", 1.0, 100.0, cells),
            UniformMode("b", 0.0, 1.0, cells),
        ])
        X = np.column_stack([
            np.exp(gen.uniform(0, np.log(100.0), n)),
            gen.uniform(0, 1, n),
        ])
        y = np.exp(gen.normal(0, 1, n))
        t = ObservedTensor.from_data(grid, X, y)
        assert 0 < t.density <= 1
        assert t.nnz <= min(n, grid.n_elements)
        assert float(t.values @ t.counts) == pytest.approx(float(y.sum()))
        # every cell mean lies within the range of its contributors
        assert t.values.min() >= y.min() - 1e-12
        assert t.values.max() <= y.max() + 1e-12

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), split=st.floats(0.1, 0.9))
    def test_merge_associativity(self, seed, split):
        gen = np.random.default_rng(seed)
        grid = TensorGrid([
            UniformMode("a", 0.0, 1.0, 4),
            UniformMode("b", 0.0, 1.0, 4),
        ])
        n = 120
        X = gen.uniform(0, 1, size=(n, 2))
        y = np.exp(gen.normal(0, 1, n))
        k = max(1, min(n - 1, int(split * n)))
        t1 = ObservedTensor.from_data(grid, X[:k], y[:k])
        t2 = ObservedTensor.from_data(grid, X[k:], y[k:])
        full = ObservedTensor.from_data(grid, X, y)
        merged = t1.merge(t2)
        np.testing.assert_allclose(
            merged.dense(fill=0.0), full.dense(fill=0.0), rtol=1e-10
        )

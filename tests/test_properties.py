"""Cross-cutting property-based tests on model-level invariants."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CPRModel
from repro.core.grid import LogMode, TensorGrid, UniformMode
from repro.core.tensor import ObservedTensor


def _make_data(seed, n=400):
    gen = np.random.default_rng(seed)
    X = np.exp(gen.uniform(0.0, np.log(64.0), size=(n, 2)))
    y = 1e-3 * X[:, 0] ** 1.2 * X[:, 1] ** 0.7 * np.exp(
        gen.normal(0, 0.02, size=n)
    )
    return X, y


class TestModelInvariants:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_sample_order_invariance(self, seed):
        """Fitting on a permutation of the data gives the same model."""
        X, y = _make_data(seed)
        gen = np.random.default_rng(seed + 1)
        perm = gen.permutation(len(y))
        a = CPRModel(cells=6, rank=2, seed=0).fit(X, y)
        b = CPRModel(cells=6, rank=2, seed=0).fit(X[perm], y[perm])
        np.testing.assert_allclose(a.predict(X[:30]), b.predict(X[:30]), rtol=1e-8)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 100),
        scale=st.floats(1e-3, 1e3),
    )
    def test_time_unit_equivariance(self, seed, scale):
        """Rescaling execution times rescales predictions exactly.

        The log_mse model absorbs a global factor into its offset, so
        predictions must scale linearly with the unit of time (seconds vs
        milliseconds must not change model quality).
        """
        X, y = _make_data(seed)
        a = CPRModel(cells=6, rank=2, seed=0).fit(X, y)
        b = CPRModel(cells=6, rank=2, seed=0).fit(X, y * scale)
        np.testing.assert_allclose(
            b.predict(X[:30]), scale * a.predict(X[:30]), rtol=1e-7
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_predictions_always_positive_finite(self, seed):
        X, y = _make_data(seed)
        m = CPRModel(cells=6, rank=2, seed=seed).fit(X, y)
        gen = np.random.default_rng(seed)
        Xq = np.exp(gen.uniform(0.0, np.log(64.0), size=(100, 2)))
        pred = m.predict(Xq)
        assert np.all(pred > 0) and np.all(np.isfinite(pred))

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 50))
    def test_mlogq2_model_positive_everywhere(self, seed):
        X, y = _make_data(seed)
        m = CPRModel(cells=5, rank=2, loss="mlogq2", max_sweeps=1,
                     newton_iters=6, seed=seed).fit(X, y)
        gen = np.random.default_rng(seed)
        # include out-of-domain queries (extrapolation path)
        Xq = np.exp(gen.uniform(0.0, np.log(512.0), size=(60, 2)))
        pred = m.predict(Xq)
        assert np.all(pred > 0) and np.all(np.isfinite(pred))


class TestTensorInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        cells=st.integers(2, 12),
        n=st.integers(1, 200),
    )
    def test_density_and_mass(self, seed, cells, n):
        gen = np.random.default_rng(seed)
        grid = TensorGrid([
            LogMode("a", 1.0, 100.0, cells),
            UniformMode("b", 0.0, 1.0, cells),
        ])
        X = np.column_stack([
            np.exp(gen.uniform(0, np.log(100.0), n)),
            gen.uniform(0, 1, n),
        ])
        y = np.exp(gen.normal(0, 1, n))
        t = ObservedTensor.from_data(grid, X, y)
        assert 0 < t.density <= 1
        assert t.nnz <= min(n, grid.n_elements)
        assert float(t.values @ t.counts) == pytest.approx(float(y.sum()))
        # every cell mean lies within the range of its contributors
        assert t.values.min() >= y.min() - 1e-12
        assert t.values.max() <= y.max() + 1e-12

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), split=st.floats(0.1, 0.9))
    def test_merge_associativity(self, seed, split):
        gen = np.random.default_rng(seed)
        grid = TensorGrid([
            UniformMode("a", 0.0, 1.0, 4),
            UniformMode("b", 0.0, 1.0, 4),
        ])
        n = 120
        X = gen.uniform(0, 1, size=(n, 2))
        y = np.exp(gen.normal(0, 1, n))
        k = max(1, min(n - 1, int(split * n)))
        t1 = ObservedTensor.from_data(grid, X[:k], y[:k])
        t2 = ObservedTensor.from_data(grid, X[k:], y[k:])
        full = ObservedTensor.from_data(grid, X, y)
        merged = t1.merge(t2)
        np.testing.assert_allclose(
            merged.dense(fill=0.0), full.dense(fill=0.0), rtol=1e-10
        )

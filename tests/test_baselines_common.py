"""Interface-contract tests shared by every baseline regressor."""
import numpy as np
import pytest

from repro.baselines import (
    ExtraTreesRegressor,
    GaussianProcessRegressor,
    GradientBoostingRegressor,
    KNNRegressor,
    LogSpaceRegressor,
    MARSRegressor,
    MLPRegressor,
    OLSRegressor,
    PMNFRegressor,
    RandomForestRegressor,
    RidgeRegressor,
    SparseGridRegressor,
    SVMRegressor,
)

# (factory, needs_seed) — small/fast configurations for contract tests
FACTORIES = {
    "ols": lambda: OLSRegressor(),
    "ridge": lambda: RidgeRegressor(alpha=1e-3),
    "pmnf": lambda: PMNFRegressor(n_terms=3, interactions=False),
    "knn": lambda: KNNRegressor(k=3),
    "mars": lambda: MARSRegressor(max_terms=9, max_knots=8),
    "rf": lambda: RandomForestRegressor(n_estimators=4, max_depth=4, seed=0),
    "et": lambda: ExtraTreesRegressor(n_estimators=4, max_depth=4, seed=0),
    "gb": lambda: GradientBoostingRegressor(n_estimators=8, max_depth=3, seed=0),
    "mlp": lambda: MLPRegressor(hidden=(16,), max_epochs=20, seed=0),
    "gp": lambda: GaussianProcessRegressor(max_train=256, seed=0),
    "svm": lambda: SVMRegressor(max_train=256, max_iter=200, seed=0),
    "sgr": lambda: SparseGridRegressor(level=3),
}


@pytest.fixture(scope="module")
def toy_regression():
    gen = np.random.default_rng(0)
    X = gen.uniform(-1, 1, size=(300, 3))
    y = 2.0 + X[:, 0] - 0.5 * X[:, 1] + 0.3 * X[:, 0] * X[:, 2]
    return X, y


@pytest.mark.parametrize("name", sorted(FACTORIES))
class TestContract:
    def test_fit_returns_self(self, name, toy_regression):
        X, y = toy_regression
        model = FACTORIES[name]()
        assert model.fit(X, y) is model

    def test_predict_shape(self, name, toy_regression):
        X, y = toy_regression
        model = FACTORIES[name]().fit(X, y)
        assert model.predict(X[:17]).shape == (17,)

    def test_unfitted_predict_raises(self, name, toy_regression):
        X, _ = toy_regression
        with pytest.raises(RuntimeError):
            FACTORIES[name]().predict(X)

    def test_feature_count_mismatch(self, name, toy_regression):
        X, y = toy_regression
        model = FACTORIES[name]().fit(X, y)
        with pytest.raises(ValueError):
            model.predict(np.ones((4, 5)))

    def test_empty_fit_rejected(self, name):
        with pytest.raises(ValueError):
            FACTORIES[name]().fit(np.empty((0, 2)), np.empty(0))

    def test_better_than_constant(self, name, toy_regression):
        """Every model must beat the predict-the-mean baseline in MSE."""
        X, y = toy_regression
        model = FACTORIES[name]().fit(X, y)
        pred = model.predict(X)
        assert np.mean((pred - y) ** 2) < 0.9 * np.var(y)

    def test_constant_target(self, name, toy_regression):
        X, _ = toy_regression
        y = np.full(len(X), 3.5)
        model = FACTORIES[name]().fit(X, y)
        pred = model.predict(X[:20])
        np.testing.assert_allclose(pred, 3.5, atol=0.5)

    def test_size_bytes_positive(self, name, toy_regression):
        X, y = toy_regression
        model = FACTORIES[name]().fit(X, y)
        assert model.size_bytes > 0

    def test_score_uses_mlogq(self, name, toy_regression):
        X, y = toy_regression
        ypos = np.abs(y) + 1.0
        model = FACTORIES[name]().fit(X, ypos)
        s = model.score(X, ypos)
        assert np.isfinite(s) and s >= 0


class TestLogSpaceWrapper:
    def test_positive_predictions(self, toy_regression):
        X, y = toy_regression
        ypos = np.exp(y)
        m = LogSpaceRegressor(OLSRegressor()).fit(X, ypos)
        assert np.all(m.predict(X) > 0)

    def test_recovers_loglinear_exactly(self):
        gen = np.random.default_rng(1)
        X = gen.uniform(0, 1, size=(100, 2))
        ypos = np.exp(1.0 + 2.0 * X[:, 0] - X[:, 1])
        m = LogSpaceRegressor(OLSRegressor()).fit(X, ypos)
        np.testing.assert_allclose(m.predict(X), ypos, rtol=1e-8)

    def test_rejects_nonpositive(self, toy_regression):
        X, y = toy_regression
        with pytest.raises(ValueError):
            LogSpaceRegressor(OLSRegressor()).fit(X, y - y.min())

    def test_size_uses_inner_hook(self, toy_regression):
        X, y = toy_regression
        m = LogSpaceRegressor(MARSRegressor(max_terms=5)).fit(X, np.abs(y) + 1)
        assert m.size_bytes < 4096


@pytest.mark.parametrize("name", ["rf", "et", "gb", "mlp", "gp", "svm"])
def test_seeded_models_reproducible(name, toy_regression):
    X, y = toy_regression
    a = FACTORIES[name]().fit(X, y).predict(X[:10])
    b = FACTORIES[name]().fit(X, y).predict(X[:10])
    np.testing.assert_allclose(a, b)

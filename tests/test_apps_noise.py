"""Tests for deterministic perturbations and noise processes."""
import numpy as np
import pytest

from repro.apps.noise import LogNormalNoise, NoNoise, hash01, hash_perturb


class TestHash01:
    def test_deterministic(self):
        a = hash01(np.arange(100), np.arange(100) * 2)
        b = hash01(np.arange(100), np.arange(100) * 2)
        np.testing.assert_array_equal(a, b)

    def test_range(self):
        u = hash01(np.arange(10000))
        assert np.all((u >= 0) & (u < 1))

    def test_roughly_uniform(self):
        u = hash01(np.arange(100000))
        assert abs(u.mean() - 0.5) < 0.01
        assert abs(np.mean(u < 0.25) - 0.25) < 0.01

    def test_salt_changes_stream(self):
        a = hash01(np.arange(100), salt=1)
        b = hash01(np.arange(100), salt=2)
        assert not np.allclose(a, b)

    def test_column_order_matters(self):
        x = np.arange(50)
        y = np.arange(50) + 7
        assert not np.allclose(hash01(x, y), hash01(y, x))

    def test_no_columns_raises(self):
        with pytest.raises(ValueError):
            hash01()

    def test_float_inputs_floored(self):
        a = hash01(np.array([3.2, 3.9]))
        b = hash01(np.array([3.0, 3.0]))
        np.testing.assert_array_equal(a, b)


class TestHashPerturb:
    def test_bounds(self):
        w = hash_perturb(np.arange(10000), amplitude=0.07)
        assert np.all((w >= 0.93) & (w <= 1.07))

    def test_amplitude_zero_is_one(self):
        np.testing.assert_allclose(hash_perturb(np.arange(10), amplitude=0.0), 1.0)

    def test_bad_amplitude(self):
        with pytest.raises(ValueError):
            hash_perturb(np.arange(3), amplitude=1.5)


class TestNoiseProcesses:
    def test_lognormal_positive(self):
        n = LogNormalNoise(0.05)
        t = n.apply(np.full(1000, 2.0), rng=np.random.default_rng(0))
        assert np.all(t > 0)
        assert abs(np.std(np.log(t)) - 0.05) < 0.01

    def test_lognormal_zero_sigma_identity(self):
        n = LogNormalNoise(0.0)
        x = np.array([1.0, 2.0])
        np.testing.assert_array_equal(n.apply(x), x)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            LogNormalNoise(-0.1)

    def test_nonoise_identity_copy(self):
        x = np.array([1.0, 2.0])
        out = NoNoise().apply(x)
        np.testing.assert_array_equal(out, x)
        assert out is not x

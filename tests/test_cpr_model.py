"""End-to-end tests for the CPRModel public API."""
import numpy as np
import pytest

from repro.core import CPRModel, TuckerModel
from repro.utils import load_model, save_model


class TestConstruction:
    def test_bad_loss(self):
        with pytest.raises(ValueError):
            CPRModel(loss="huber")

    def test_mlogq2_forces_amn(self):
        m = CPRModel(loss="mlogq2")
        assert m.optimizer == "amn"
        with pytest.raises(ValueError):
            CPRModel(loss="mlogq2", optimizer="als")

    def test_amn_requires_mlogq2(self):
        with pytest.raises(ValueError):
            CPRModel(loss="log_mse", optimizer="amn")

    def test_bad_out_of_domain(self):
        with pytest.raises(ValueError):
            CPRModel(out_of_domain="panic")

    def test_unknown_optimizer(self):
        with pytest.raises(ValueError):
            CPRModel(optimizer="adamw")

    def test_repr_unfitted(self):
        assert "rank=4" in repr(CPRModel(rank=4))


class TestFitPredictSmooth(object):
    def test_fits_separable_function(self, smooth_2d):
        X, y = smooth_2d
        m = CPRModel(cells=16, rank=2, seed=0).fit(X, y)
        err = m.score(X, y)
        assert err < 0.05

    def test_predictions_positive(self, smooth_2d):
        X, y = smooth_2d
        m = CPRModel(cells=8, rank=2, seed=0).fit(X, y)
        assert np.all(m.predict(X) > 0)

    def test_generalizes_to_fresh_samples(self, smooth_2d):
        X, y = smooth_2d
        m = CPRModel(cells=16, rank=2, seed=0).fit(X[:1500], y[:1500])
        assert m.score(X[1500:], y[1500:]) < 0.08

    def test_mlogq2_model_fits_too(self, smooth_2d):
        X, y = smooth_2d
        m = CPRModel(cells=8, rank=2, loss="mlogq2", seed=0,
                     max_sweeps=2, newton_iters=10).fit(X, y)
        assert m.score(X, y) < 0.1


class TestWithSpace:
    def test_matmul_end_to_end(self, mm_data):
        app, train, test = mm_data
        m = CPRModel(space=app.space, cells=8, rank=4, seed=0).fit(train.X, train.y)
        assert m.score(test.X, test.y) < 0.25
        assert m.grid_.shape == (8, 8, 8)

    def test_cells_dict(self, mm_data):
        app, train, _ = mm_data
        m = CPRModel(space=app.space, cells={"m": 4, "n": 8, "k": 4},
                     rank=2, seed=0).fit(train.X, train.y)
        assert m.grid_.shape == (4, 8, 4)

    def test_categorical_space(self, fmm_data):
        app, train, test = fmm_data
        m = CPRModel(space=app.space, cells=6, rank=4, seed=0).fit(train.X, train.y)
        assert np.all(m.predict(test.X) > 0)


class TestValidation:
    def test_unfitted_predict(self):
        with pytest.raises(RuntimeError):
            CPRModel().predict(np.ones((2, 3)))

    def test_nonpositive_times(self, smooth_2d):
        X, y = smooth_2d
        y = y.copy()
        y[0] = 0.0
        with pytest.raises(ValueError):
            CPRModel().fit(X, y)

    def test_wrong_predict_columns(self, smooth_2d):
        X, y = smooth_2d
        m = CPRModel(cells=4, rank=1, seed=0).fit(X, y)
        with pytest.raises(ValueError):
            m.predict(np.ones((3, 5)))

    def test_row_mismatch(self, smooth_2d):
        X, y = smooth_2d
        with pytest.raises(ValueError):
            CPRModel().fit(X, y[:-1])

    def test_short_scales_list_rejected(self, smooth_2d):
        """A scales list shorter than the data's columns must raise clearly
        (it used to surface as a bare IndexError mid-grid-construction)."""
        X, y = smooth_2d
        with pytest.raises(ValueError, match="scales list length"):
            CPRModel(cells=4, rank=1, scales=["log"]).fit(X, y)

    def test_matching_scales_list_ok(self, smooth_2d):
        X, y = smooth_2d
        m = CPRModel(cells=4, rank=1, seed=0, scales=["log", None]).fit(X, y)
        assert m.grid_.order == 2


class TestOutOfDomainPolicies:
    def _fitted(self, smooth_2d, **kw):
        X, y = smooth_2d
        return CPRModel(cells=8, rank=2, seed=0, **kw).fit(X, y), X, y

    def test_raise_policy(self, smooth_2d):
        m, X, y = self._fitted(smooth_2d, out_of_domain="raise")
        bad = np.array([[1e6, 10.0]])
        with pytest.raises(ValueError):
            m.predict(bad)

    def test_clip_policy(self, smooth_2d):
        m, X, y = self._fitted(smooth_2d, out_of_domain="clip")
        far = np.array([[1e6, 10.0]])
        edge = np.array([[X[:, 0].max(), 10.0]])
        np.testing.assert_allclose(m.predict(far), m.predict(edge), rtol=1e-9)

    def test_log_mse_auto_clips(self, smooth_2d):
        m, X, y = self._fitted(smooth_2d)
        pred = m.predict(np.array([[1e6, 10.0]]))
        assert np.isfinite(pred).all() and pred[0] > 0

    def test_extrapolate_rejected_for_log_mse(self, smooth_2d):
        m, X, y = self._fitted(smooth_2d, out_of_domain="extrapolate")
        with pytest.raises(ValueError):
            m.predict(np.array([[1e6, 10.0]]))


class TestExtrapolationModel:
    def test_power_law_extrapolation(self):
        """The Section 5.3 model should track y = x1^1.5 * x2 beyond range."""
        gen = np.random.default_rng(0)
        X = np.exp(gen.uniform(np.log(2.0), np.log(128.0), size=(3000, 2)))
        y = 1e-4 * X[:, 0] ** 1.5 * X[:, 1]
        m = CPRModel(cells=10, rank=2, loss="mlogq2", seed=0,
                     max_sweeps=2, newton_iters=12).fit(X, y)
        Xq = np.array([[512.0, 64.0], [1024.0, 16.0]])
        yq = 1e-4 * Xq[:, 0] ** 1.5 * Xq[:, 1]
        pred = m.predict(Xq)
        assert np.all(np.abs(np.log(pred / yq)) < 0.5)

    def test_multi_mode_extrapolation(self):
        gen = np.random.default_rng(1)
        X = np.exp(gen.uniform(np.log(2.0), np.log(128.0), size=(3000, 2)))
        y = 1e-4 * X[:, 0] * X[:, 1] ** 2
        m = CPRModel(cells=10, rank=2, loss="mlogq2", seed=0,
                     max_sweeps=2, newton_iters=12).fit(X, y)
        Xq = np.array([[512.0, 512.0]])
        yq = 1e-4 * Xq[:, 0] * Xq[:, 1] ** 2
        pred = m.predict(Xq)
        assert abs(np.log(pred[0] / yq[0])) < 1.0

    def test_extrapolated_positive(self, mm_data):
        app, train, _ = mm_data
        m = CPRModel(space=app.space, cells=6, rank=2, loss="mlogq2", seed=0,
                     max_sweeps=1, newton_iters=8).fit(train.X, train.y)
        Xq = train.X[:10].copy()
        Xq[:, 0] = 1e5
        assert np.all(m.predict(Xq) > 0)


class TestSizeAccounting:
    def test_n_parameters(self, smooth_2d):
        X, y = smooth_2d
        m = CPRModel(cells=8, rank=3, seed=0).fit(X, y)
        assert m.n_parameters == 3 * (8 + 8)
        assert m.factor_bytes == 8 * m.n_parameters

    def test_size_bytes_small(self, smooth_2d):
        X, y = smooth_2d
        m = CPRModel(cells=8, rank=3, seed=0).fit(X, y)
        # linear model size: far below the training set footprint
        assert m.size_bytes < 8192

    def test_unfitted_size_raises(self):
        with pytest.raises(RuntimeError):
            _ = CPRModel().n_parameters


class TestPersistence:
    def test_save_load_predict_identical(self, smooth_2d, tmp_path):
        X, y = smooth_2d
        m = CPRModel(cells=8, rank=2, seed=0).fit(X, y)
        path = tmp_path / "cpr.pkl"
        save_model(m, path)
        m2 = load_model(path)
        np.testing.assert_allclose(m2.predict(X[:50]), m.predict(X[:50]))

    def test_disk_size_matches_size_bytes(self, smooth_2d, tmp_path):
        """Persistence and size accounting share the minimal state.

        Regression: save_model used to pickle the full fitted object —
        fit-time buffers included — so on-disk size diverged from the
        reported ``size_bytes`` by the training-set footprint.  A
        prediction-only snapshot (``fit_state=False``) is exactly the
        measured state plus a small class tag; the default payload adds
        only the compact observed tensor (bounded by the observed cell
        count, never the raw training set), which ``size_bytes`` — the
        Figure 7 metric — deliberately does not count.
        """
        X, y = smooth_2d
        m = CPRModel(cells=8, rank=2, seed=0).fit(X, y)
        m.predict(X[:10])  # populate lazy caches; size must not change
        written = save_model(m, tmp_path / "cpr.pkl", fit_state=False)
        # identical state + a small constant class tag, nothing else
        assert 0 < written - m.size_bytes < 256
        import pickle

        full = save_model(m, tmp_path / "cpr_full.pkl")
        tensor_bytes = len(pickle.dumps(m.__getstate_fit__()))
        assert written < full < written + tensor_bytes + 256
        # far below the raw training set the observed tensor summarizes
        assert full < len(pickle.dumps((X, y)))

    def test_roundtrip_mlogq2_with_extrapolation(self, smooth_2d, tmp_path):
        X, y = smooth_2d
        m = CPRModel(cells=6, rank=2, loss="mlogq2", seed=0,
                     max_sweeps=1, newton_iters=6).fit(X, y)
        Xq = X[:20].copy()
        Xq[:10, 0] = X[:, 0].max() * 10.0  # out-of-domain -> extrapolators
        save_model(m, tmp_path / "pos.pkl")
        m2 = load_model(tmp_path / "pos.pkl")
        np.testing.assert_array_equal(m2.predict(Xq), m.predict(Xq))

    def test_roundtrip_tucker(self, smooth_2d, tmp_path):
        X, y = smooth_2d
        m = TuckerModel(cells=6, rank=2, seed=0).fit(X, y)
        save_model(m, tmp_path / "tucker.pkl")
        m2 = load_model(tmp_path / "tucker.pkl")
        assert isinstance(m2, TuckerModel)
        np.testing.assert_array_equal(m2.predict(X[:50]), m.predict(X[:50]))
        assert m2.n_parameters == m.n_parameters

    def test_restored_model_partial_fits_like_original(self, smooth_2d, tmp_path):
        """Restore + update must equal never having persisted at all.

        The persisted payload carries the observed tensor (the sufficient
        statistic of ``partial_fit``), so the old refusal guard is gone:
        a model reloaded from disk — or from the serving registry —
        keeps absorbing streaming measurements bit-identically.
        """
        X, y = smooth_2d
        m = CPRModel(cells=8, rank=2, seed=0).fit(X[100:], y[100:])
        save_model(m, tmp_path / "cpr.pkl")
        m2 = load_model(tmp_path / "cpr.pkl")
        m.partial_fit(X[:100], y[:100])
        m2.partial_fit(X[:100], y[:100])
        np.testing.assert_array_equal(m2.predict(X[:50]), m.predict(X[:50]))

    def test_prediction_only_snapshot_refuses_partial_fit(
        self, smooth_2d, tmp_path
    ):
        X, y = smooth_2d
        m = CPRModel(cells=8, rank=2, seed=0).fit(X, y)
        save_model(m, tmp_path / "cpr.pkl", fit_state=False)
        m2 = load_model(tmp_path / "cpr.pkl")
        with pytest.raises(RuntimeError, match="prediction-only"):
            m2.partial_fit(X[:10], y[:10])


class TestOptimizerChoices:
    @pytest.mark.parametrize("opt,sweeps", [("als", 50), ("ccd", 120), ("sgd", 250)])
    def test_all_ls_optimizers_work(self, smooth_2d, opt, sweeps):
        X, y = smooth_2d
        m = CPRModel(cells=8, rank=2, optimizer=opt, seed=0,
                     max_sweeps=sweeps).fit(X, y)
        assert m.score(X, y) < 0.25

    def test_seed_reproducibility(self, smooth_2d):
        X, y = smooth_2d
        a = CPRModel(cells=8, rank=2, seed=5).fit(X, y).predict(X[:20])
        b = CPRModel(cells=8, rank=2, seed=5).fit(X, y).predict(X[:20])
        np.testing.assert_array_equal(a, b)

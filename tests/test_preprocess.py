"""Tests for the FeatureMap baseline preprocessing."""
import numpy as np
import pytest

from repro.apps import AMG, MatMul
from repro.baselines import FeatureMap


class TestNumericOnly:
    def test_log_columns_standardized(self):
        fm = FeatureMap(MatMul().space)
        X = MatMul().space.sample(500, np.random.default_rng(0))
        F = fm.fit_transform(X)
        assert F.shape == (500, 3)
        np.testing.assert_allclose(F.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(F.std(axis=0), 1.0, atol=1e-9)

    def test_transform_consistent(self):
        space = MatMul().space
        fm = FeatureMap(space)
        X = space.sample(100, np.random.default_rng(1))
        fm.fit(X)
        F1 = fm.transform(X[:10])
        F2 = fm.fit_transform(X)[:10]
        np.testing.assert_allclose(F1, F2)

    def test_no_space_logs_positive_columns(self):
        fm = FeatureMap(None)
        X = np.column_stack([np.exp(np.linspace(0, 5, 50)), np.linspace(-1, 1, 50)])
        F = fm.fit_transform(X)
        # first column was logged -> linear in index; z-scored either way
        assert np.allclose(np.diff(F[:, 0]), np.diff(F[:, 0])[0])

    def test_wrong_columns(self):
        space = MatMul().space
        fm = FeatureMap(space).fit(space.sample(20, np.random.default_rng(2)))
        with pytest.raises(ValueError):
            fm.transform(np.ones((5, 7)))


class TestCategorical:
    def test_one_hot_width(self):
        space = AMG().space
        fm = FeatureMap(space)
        X = space.sample(200, np.random.default_rng(3))
        F = fm.fit_transform(X)
        # 5 numeric + 7 + 10 + 14 one-hot columns
        assert F.shape[1] == 5 + 7 + 10 + 14
        assert fm.n_features_out == F.shape[1]

    def test_one_hot_is_indicator(self):
        space = AMG().space
        fm = FeatureMap(space)
        X = space.sample(50, np.random.default_rng(4))
        F = fm.fit_transform(X)
        block = F[:, 3:10]  # ct block follows the nx/ny/nz columns
        np.testing.assert_allclose(block.sum(axis=1), 1.0)
        assert set(np.unique(block)) <= {0.0, 1.0}

    def test_index_mode(self):
        space = AMG().space
        fm = FeatureMap(space, one_hot=False)
        X = space.sample(50, np.random.default_rng(5))
        F = fm.fit_transform(X)
        assert F.shape[1] == space.dimension

    def test_invalid_category_rejected(self):
        space = AMG().space
        fm = FeatureMap(space)
        X = space.sample(10, np.random.default_rng(6))
        fm.fit(X)
        X[0, 3] = 99.0
        with pytest.raises(ValueError):
            fm.transform(X)

"""Tests for the Table 1 error metrics."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics import (
    METRICS,
    epsilon_form,
    lgmape,
    log_q,
    mae,
    mape,
    mlogq,
    mlogq2,
    mse,
    relative_errors,
    smape,
)

_y = np.array([1.0, 2.0, 0.5, 10.0])
_m = np.array([1.1, 1.8, 0.55, 12.0])


class TestBasicValues:
    def test_perfect_predictions_zero_error(self):
        for name in ("mape", "mae", "mse", "smape", "mlogq", "mlogq2"):
            assert METRICS[name](_y, _y) == 0.0

    def test_mape_value(self):
        m = np.array([2.0])
        y = np.array([1.0])
        assert mape(m, y) == pytest.approx(1.0)

    def test_mae_value(self):
        assert mae(np.array([3.0, 1.0]), np.array([1.0, 1.0])) == pytest.approx(1.0)

    def test_mse_value(self):
        assert mse(np.array([3.0]), np.array([1.0])) == pytest.approx(4.0)

    def test_smape_value(self):
        # |3-1|/(3+1) * 2 = 1
        assert smape(np.array([3.0]), np.array([1.0])) == pytest.approx(1.0)

    def test_mlogq_value(self):
        assert mlogq(np.array([np.e]), np.array([1.0])) == pytest.approx(1.0)

    def test_mlogq2_value(self):
        assert mlogq2(np.array([np.e**2]), np.array([1.0])) == pytest.approx(4.0)

    def test_lgmape_finite_for_imperfect(self):
        assert np.isfinite(lgmape(_m, _y))

    def test_log_q_clips_nonpositive_predictions(self):
        q = log_q(np.array([-1.0, 0.0]), np.array([1.0, 1.0]))
        assert np.all(np.isfinite(q))
        assert np.all(q < 0)

    def test_relative_errors_definition(self):
        eps = relative_errors(_m, _y)
        np.testing.assert_allclose(eps, _m / _y - 1.0)


class TestScaleIndependence:
    """Only MLogQ/MLogQ2 penalize a*y and y/a equally (paper Section 2.2)."""

    @pytest.mark.parametrize("a", [2.0, 5.0, 10.0])
    def test_mlogq_symmetric_under_over(self, a):
        y = np.array([1.0, 3.0, 0.2])
        assert mlogq(a * y, y) == pytest.approx(mlogq(y / a, y))

    @pytest.mark.parametrize("a", [2.0, 5.0])
    def test_mlogq2_symmetric_under_over(self, a):
        y = np.array([1.0, 3.0, 0.2])
        assert mlogq2(a * y, y) == pytest.approx(mlogq2(y / a, y))

    def test_mape_is_not_symmetric(self):
        y = np.array([1.0])
        assert mape(2.0 * y, y) != pytest.approx(mape(y / 2.0, y))

    @pytest.mark.parametrize("scale", [1e-6, 1.0, 1e6])
    def test_mlogq_invariant_to_common_rescaling(self, scale):
        assert mlogq(scale * _m, scale * _y) == pytest.approx(mlogq(_m, _y))


class TestTable1Equivalences:
    """Rows 1-5 exact; rows 6-7 Taylor (match as eps -> 0)."""

    @pytest.mark.parametrize("name", ["mape", "mae", "mse", "smape", "lgmape"])
    def test_exact_rows(self, name):
        gen = np.random.default_rng(0)
        y = np.exp(gen.uniform(-5, 5, size=200))
        eps = gen.uniform(-0.9, 2.0, size=200)
        m = y * (1 + eps)
        direct = METRICS[name](m, y)
        via = epsilon_form(name, eps, y)
        assert direct == pytest.approx(via, rel=1e-12)

    @pytest.mark.parametrize("name", ["mlogq", "mlogq2"])
    def test_taylor_rows_tighten(self, name):
        # One-sided eps: with symmetric +-eps the O(eps^2) per-sample gaps
        # cancel in the mean, masking the Taylor-order comparison.
        gen = np.random.default_rng(1)
        y = np.exp(gen.uniform(-5, 5, size=500))
        gaps = []
        for mag in (0.3, 0.03, 0.003):
            eps = gen.uniform(0.1 * mag, mag, size=500)
            m = y * (1 + eps)
            direct = METRICS[name](m, y)
            via = epsilon_form(name, eps, y)
            gaps.append(abs(direct - via) / max(direct, 1e-300))
        assert gaps[0] > gaps[1] > gaps[2]
        assert gaps[2] < 1e-2

    def test_epsilon_form_unknown_metric(self):
        with pytest.raises(KeyError):
            epsilon_form("nope", np.zeros(3), np.ones(3))


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mlogq(np.ones(3), np.ones(4))

    def test_nonpositive_targets_rejected(self):
        with pytest.raises(ValueError):
            mlogq(np.ones(2), np.array([1.0, 0.0]))

    def test_2d_input_rejected(self):
        with pytest.raises(ValueError):
            mape(np.ones((2, 2)), np.ones((2, 2)))

    def test_smape_zero_denominator(self):
        with pytest.raises(ValueError):
            smape(np.array([-1.0]), np.array([1.0]))


@settings(max_examples=60, deadline=None)
@given(
    y=hnp.arrays(
        float, st.integers(1, 30),
        elements=st.floats(1e-6, 1e6, allow_nan=False, allow_infinity=False),
    ),
    a=st.floats(1.1, 100.0),
)
def test_property_mlogq_scale_independence(y, a):
    assert mlogq(a * y, y) == pytest.approx(mlogq(y / a, y), rel=1e-9)


@settings(max_examples=60, deadline=None)
@given(
    y=hnp.arrays(
        float, st.integers(1, 30),
        elements=st.floats(1e-6, 1e6, allow_nan=False, allow_infinity=False),
    ),
    eps=st.floats(-0.5, 2.0),
)
def test_property_exact_epsilon_rows(y, eps):
    m = y * (1 + eps)
    # Use the epsilon actually realized after rounding: for |eps| near the
    # unit roundoff, y * (1 + eps) rounds back to y exactly, and the metric
    # is 0 while the nominal eps form is not.  (m - y) / y mirrors the
    # metric formulas digit-for-digit; m / y - 1 would cancel catastrophically.
    e = (m - y) / y
    for name in ("mape", "mae", "smape"):
        assert METRICS[name](m, y) == pytest.approx(
            epsilon_form(name, e, y), rel=1e-9, abs=1e-12
        )


@settings(max_examples=40, deadline=None)
@given(
    y=hnp.arrays(
        float, st.integers(2, 20),
        elements=st.floats(1e-3, 1e3, allow_nan=False, allow_infinity=False),
    )
)
def test_property_mlogq2_ge_mlogq_squared(y):
    """Jensen: mean of squares >= square of mean of |logq|."""
    gen = np.random.default_rng(0)
    m = y * np.exp(gen.normal(0, 0.3, size=y.shape))
    assert mlogq2(m, y) >= mlogq(m, y) ** 2 - 1e-12

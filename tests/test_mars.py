"""Tests for the MARS implementation (forward pass, pruning, hinges)."""
import numpy as np
import pytest

from repro.baselines.mars import MARSRegressor, _Basis, _hinge


class TestHinge:
    def test_positive_hinge(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_allclose(_hinge(x, 0.5, +1), [0.0, 0.0, 1.5])

    def test_negative_hinge(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_allclose(_hinge(x, 0.5, -1), [1.5, 0.5, 0.0])

    def test_reflected_pair_sums_to_abs(self):
        gen = np.random.default_rng(0)
        x = gen.uniform(-2, 2, 50)
        c = 0.3
        np.testing.assert_allclose(
            _hinge(x, c, +1) + _hinge(x, c, -1), np.abs(x - c)
        )


class TestBasis:
    def test_intercept_evaluates_ones(self):
        X = np.zeros((5, 2))
        np.testing.assert_allclose(_Basis().evaluate(X), 1.0)

    def test_product_of_factors(self):
        b = _Basis().with_factor(0, 0.0, +1).with_factor(1, 0.0, +1)
        X = np.array([[1.0, 2.0], [1.0, -1.0]])
        np.testing.assert_allclose(b.evaluate(X), [2.0, 0.0])

    def test_degree_and_features(self):
        b = _Basis().with_factor(0, 0.0, +1).with_factor(2, 1.0, -1)
        assert b.degree == 2
        assert b.features() == {0, 2}

    def test_repr(self):
        assert repr(_Basis()) == "1"
        assert "x0" in repr(_Basis().with_factor(0, 0.5, +1))


class TestMARSFitting:
    def test_recovers_single_hinge(self):
        gen = np.random.default_rng(1)
        X = gen.uniform(-1, 1, size=(400, 1))
        y = 3.0 * np.maximum(X[:, 0] - 0.2, 0.0) + 1.0
        m = MARSRegressor(max_degree=1).fit(X, y)
        assert np.mean((m.predict(X) - y) ** 2) < 1e-3 * max(np.var(y), 1.0)

    def test_recovers_vshape(self):
        gen = np.random.default_rng(2)
        X = gen.uniform(-1, 1, size=(400, 1))
        y = np.abs(X[:, 0])
        m = MARSRegressor(max_degree=1).fit(X, y)
        assert np.mean((m.predict(X) - y) ** 2) < 5e-3 * np.var(y)

    def test_interaction_needs_degree2(self):
        gen = np.random.default_rng(3)
        X = gen.uniform(0, 1, size=(500, 2))
        y = X[:, 0] * X[:, 1]
        additive = MARSRegressor(max_degree=1).fit(X, y)
        inter = MARSRegressor(max_degree=2).fit(X, y)
        assert (
            np.mean((inter.predict(X) - y) ** 2)
            <= np.mean((additive.predict(X) - y) ** 2) + 1e-12
        )

    def test_max_terms_respected(self):
        gen = np.random.default_rng(4)
        X = gen.uniform(size=(300, 3))
        y = np.sin(5 * X[:, 0]) + X[:, 1]
        m = MARSRegressor(max_terms=7).fit(X, y)
        assert m.n_terms <= 7

    def test_pruning_reduces_terms_on_noise(self):
        """Pure-noise targets should prune to (nearly) the intercept."""
        gen = np.random.default_rng(5)
        X = gen.uniform(size=(200, 2))
        y = gen.standard_normal(200)
        m = MARSRegressor(max_terms=15).fit(X, y)
        assert m.n_terms <= 7

    def test_feature_used_once_per_term(self):
        gen = np.random.default_rng(6)
        X = gen.uniform(size=(300, 2))
        y = X[:, 0] ** 2  # tempting to nest x0 twice
        m = MARSRegressor(max_degree=3).fit(X, y)
        for basis in m.bases_:
            feats = [f for f, _, _ in basis.factors]
            assert len(feats) == len(set(feats))

    def test_param_validation(self):
        with pytest.raises(ValueError):
            MARSRegressor(max_degree=0)
        with pytest.raises(ValueError):
            MARSRegressor(max_terms=1)

    def test_univariate_tiny_data(self):
        """The Section 5.3 use case: few (midpoint, log-singular) pairs."""
        x = np.linspace(0, 1, 6)[:, None]
        y = 2.0 * x[:, 0] + 1.0
        m = MARSRegressor(max_degree=1, max_terms=8).fit(x, y)
        pred = m.predict(np.array([[2.0]]))  # extrapolate the line
        assert np.isfinite(pred[0])

    def test_size_state_compact(self):
        gen = np.random.default_rng(7)
        X = gen.uniform(size=(500, 3))
        y = X[:, 0] + X[:, 1]
        m = MARSRegressor().fit(X, y)
        assert m.size_bytes < 10000  # far below the 12k-float training set

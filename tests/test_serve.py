"""Serving subsystem: registry, engine, server protocol, publish hooks."""
from __future__ import annotations

import io
import json
import os
import stat
import threading
import time

import numpy as np
import pytest

from repro.apps import Broadcast
from repro.core import CPRModel
from repro.datasets import generate_dataset
from repro.serve import MicroBatcher, ModelRegistry, ModelServer, PredictionEngine
from repro.serve.server import serve_stdin
from repro.utils.serialization import dumps_model, loads_model, model_digest


@pytest.fixture(scope="module")
def bcast_data():
    app = Broadcast()
    train = generate_dataset(app, 512, seed=0)
    test = generate_dataset(app, 64, seed=1)
    return app, train, test


def _fit(app, train, seed=0, rank=2):
    return CPRModel(
        space=app.space, cells=4, rank=rank, seed=seed, max_sweeps=5
    ).fit(train.X, train.y)


@pytest.fixture(scope="module")
def fitted(bcast_data):
    app, train, _ = bcast_data
    return _fit(app, train)


# -- serialization bytes layer -------------------------------------------------


def test_dumps_loads_model_roundtrip(bcast_data, fitted):
    _, _, test = bcast_data
    clone = loads_model(dumps_model(fitted))
    np.testing.assert_allclose(clone.predict(test.X), fitted.predict(test.X))


def test_model_digest_content_addressed(bcast_data, fitted):
    app, train, _ = bcast_data
    assert model_digest(fitted) == model_digest(fitted)  # deterministic
    other = _fit(app, train, seed=7)
    assert model_digest(other) != model_digest(fitted)


def test_model_digest_fixed_point_across_restore(bcast_data, fitted):
    """fit→dump→load→dump must be byte-identical (republish dedup).

    A streaming follower that loads a published model and republishes it
    unchanged must hit the same content-addressed blob; likewise, a
    restored-then-updated model must serialize exactly like a never-
    persisted one (pickle memoization of dtype instances used to leak
    object identity into the bytes — see ``canonical_array``).
    """
    app, train, _ = bcast_data
    clone = loads_model(dumps_model(fitted))
    assert model_digest(clone) == model_digest(fitted)
    assert model_digest(loads_model(dumps_model(clone))) == model_digest(fitted)
    new = generate_dataset(app, 64, seed=5)
    a = _fit(app, train)
    b = loads_model(dumps_model(fitted))
    a.partial_fit(new.X, new.y)
    b.partial_fit(new.X, new.y)
    assert model_digest(a) == model_digest(b)


# -- registry ------------------------------------------------------------------


def test_registry_publish_load_roundtrip(tmp_path, bcast_data, fitted):
    _, _, test = bcast_data
    reg = ModelRegistry(tmp_path)
    mv = reg.publish("bcast", fitted, meta={"app": "bcast"})
    assert mv.version == 1 and mv.ref == "bcast@v1"
    # publish stamps the fitting kernel backend and served rank
    # alongside caller meta
    assert mv.meta == {"app": "bcast",
                       "kernel_backend": fitted.fit_backend_,
                       "rank": 2}
    loaded = reg.load("bcast")
    np.testing.assert_allclose(loaded.predict(test.X), fitted.predict(test.X))
    assert "bcast" in reg and "nope" not in reg
    assert reg.names() == ["bcast"]
    assert reg.versions("bcast") == [1]


def test_registry_versioning_and_dedup(tmp_path, bcast_data, fitted):
    app, train, _ = bcast_data
    reg = ModelRegistry(tmp_path)
    v1 = reg.publish("m", fitted)
    v2 = reg.publish("m", fitted)  # identical bytes -> same blob, new version
    v3 = reg.publish("m", _fit(app, train, seed=3))
    assert [v1.version, v2.version, v3.version] == [1, 2, 3]
    assert v1.digest == v2.digest != v3.digest
    assert len(list((tmp_path / "objects").glob("*.pkl"))) == 2  # deduplicated
    assert reg.resolve("m").version == 3  # latest
    assert reg.resolve("m", 2).digest == v1.digest


def test_registry_errors(tmp_path, fitted):
    reg = ModelRegistry(tmp_path)
    with pytest.raises(KeyError):
        reg.load("absent")
    reg.publish("m", fitted)
    with pytest.raises(KeyError):
        reg.load("m", version=5)
    for bad in ("", "../escape", "a/b", ".hidden"):
        with pytest.raises(ValueError):
            reg.publish(bad, fitted)


def test_registry_lru_eviction_and_counters(tmp_path, bcast_data):
    app, train, _ = bcast_data
    reg = ModelRegistry(tmp_path, cache_size=2)
    for i in range(3):
        reg.publish(f"m{i}", _fit(app, train, seed=i))
    reg.load("m0")
    reg.load("m1")
    reg.load("m0")  # hit; m0 becomes most-recent
    reg.load("m2")  # evicts m1
    info = reg.cache_info()
    assert info["size"] == 2 and info["capacity"] == 2
    assert info["hits"] == 1 and info["misses"] == 3
    reg.load("m1")  # miss again after eviction
    assert reg.cache_info()["misses"] == 4


def test_registry_cache_never_stale_after_republish(tmp_path, bcast_data):
    """Re-publishing under the same name must be visible immediately."""
    app, train, test = bcast_data
    reg = ModelRegistry(tmp_path, cache_size=4)
    first = _fit(app, train, seed=0)
    reg.publish("m", first)
    np.testing.assert_allclose(reg.load("m").predict(test.X), first.predict(test.X))
    second = _fit(app, train, seed=9, rank=3)
    reg.publish("m", second)
    served = reg.load("m")  # cache held `first`; must not serve it for v2
    np.testing.assert_allclose(served.predict(test.X), second.predict(test.X))
    assert model_digest(served) == model_digest(second)
    # The old version stays addressable.
    np.testing.assert_allclose(
        reg.load("m", version=1).predict(test.X), first.predict(test.X)
    )


def test_registry_concurrent_publish_and_load(tmp_path, bcast_data):
    """Parallel publish/load of one name: distinct versions, no torn reads."""
    app, train, test = bcast_data
    models = [_fit(app, train, seed=s) for s in range(4)]
    digests = {model_digest(m) for m in models}
    reg = ModelRegistry(tmp_path, cache_size=2)
    reg.publish("m", models[0])

    errors: list = []
    seen: list = []
    start = threading.Barrier(8)

    def publisher(model):
        try:
            start.wait()
            for _ in range(3):
                reg.publish("m", model)
        except BaseException as exc:  # noqa: BLE001 - collected for assertion
            errors.append(exc)

    def loader():
        try:
            start.wait()
            for _ in range(10):
                served = ModelRegistry(tmp_path, cache_size=2).load("m")
                seen.append(model_digest(served))
        except BaseException as exc:  # noqa: BLE001 - collected for assertion
            errors.append(exc)

    threads = [threading.Thread(target=publisher, args=(m,)) for m in models]
    threads += [threading.Thread(target=loader) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors
    # 1 initial + 4 publishers x 3 publishes = 13 dense distinct versions.
    assert reg.versions("m") == list(range(1, 14))
    # Every load observed one of the actually-published models.
    assert set(seen) <= digests


# -- engine --------------------------------------------------------------------


def test_engine_matches_model_predict(bcast_data, fitted):
    _, _, test = bcast_data
    engine = PredictionEngine(fitted, name="bcast@v1")
    np.testing.assert_allclose(engine.predict(test.X), fitted.predict(test.X))
    stats = engine.stats()
    assert stats["batches"] == 1 and stats["queries"] == len(test.X)
    assert stats["queries_per_second"] > 0


def test_engine_chunks_large_batches(bcast_data, fitted):
    _, _, test = bcast_data
    whole = PredictionEngine(fitted).predict(test.X)
    chunked_engine = PredictionEngine(fitted, max_batch=7)
    np.testing.assert_allclose(chunked_engine.predict(test.X), whole)
    assert chunked_engine.stats()["batches"] == 1  # chunking is internal


def test_engine_rejects_bad_batches(fitted):
    engine = PredictionEngine(fitted)
    with pytest.raises(ValueError, match="3 columns"):
        engine.predict([[1.0, 2.0]])
    with pytest.raises(ValueError, match="non-finite"):
        engine.predict([[1.0, np.nan, 65536.0]])


def test_model_validate_queries_and_empty_batch(bcast_data, fitted):
    _, _, test = bcast_data
    X = fitted.validate_queries(test.X.tolist())
    assert X.shape == test.X.shape
    with pytest.raises(ValueError, match="2-dimensional"):
        fitted.validate_queries(np.zeros((2, 2, 2)))
    assert fitted.predict(np.empty((0, 3))).shape == (0,)
    assert PredictionEngine(fitted).predict(np.empty((0, 3))).shape == (0,)


def test_model_describe_is_json_roundtrippable(fitted):
    desc = json.loads(json.dumps(fitted.describe()))
    assert desc["order"] == 3 and len(desc["modes"]) == 3
    assert desc["modes"][0]["name"] == "nodes"
    # The modeling domain is ascertained from training data, so the msg
    # mode's high edge is near (not exactly) the space's 2^26 bound.
    assert desc["modes"][2]["high"] > 2**25


# -- microbatcher --------------------------------------------------------------


def test_microbatcher_slices_and_coalesces():
    flushed_sizes = []

    def slow_identity(X):
        flushed_sizes.append(len(X))
        time.sleep(0.01)
        return X[:, 0] * 10.0

    mb = MicroBatcher(slow_identity, max_batch=64, max_delay_s=0.05)
    try:
        outs = {}

        def client(i):
            outs[i] = mb.submit(np.full((2, 1), float(i)))

        threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(6):
            np.testing.assert_allclose(outs[i], [10.0 * i, 10.0 * i])
        # 12 rows total flushed, in fewer than 6 flushes (some coalesced).
        assert sum(flushed_sizes) == 12
        assert len(flushed_sizes) < 6
    finally:
        mb.close()


def test_microbatcher_propagates_errors_and_closes():
    def boom(X):
        raise ValueError("bad batch")

    mb = MicroBatcher(boom, max_batch=4, max_delay_s=0.0)
    with pytest.raises(ValueError, match="bad batch"):
        mb.submit([[1.0]])
    mb.close()
    with pytest.raises(RuntimeError, match="closed"):
        mb.submit([[1.0]])


# -- server protocol -----------------------------------------------------------


@pytest.fixture()
def server(tmp_path, bcast_data, fitted):
    app, train, _ = bcast_data
    reg = ModelRegistry(tmp_path)
    reg.publish("bcast", fitted, meta={"app": "bcast"})
    reg.publish("other", _fit(app, train, seed=5))
    return ModelServer(reg, default_model="bcast"), reg


def test_server_ping_models_stats(server, fitted):
    srv, _ = server
    assert srv.handle({"op": "ping"}) == {"ok": True, "op": "ping"}
    models = srv.handle({"op": "models"})
    assert models["ok"]
    by_name = {m["name"]: m for m in models["models"]}
    assert set(by_name) == {"bcast", "other"}
    assert by_name["bcast"]["versions"] == [1]
    assert by_name["bcast"]["schema"]["order"] == 3
    stats = srv.handle({"op": "stats"})
    assert stats["ok"] and stats["registry"]["capacity"] == 8


def test_server_predict_roundtrip(server, bcast_data, fitted):
    srv, _ = server
    _, _, test = bcast_data
    resp = srv.handle({"op": "predict", "x": test.X[:4].tolist()})
    assert resp["ok"] and resp["model"] == "bcast@v1" and resp["n"] == 4
    np.testing.assert_allclose(resp["y"], fitted.predict(test.X[:4]))
    assert resp["latency_ms"] >= 0.0
    # Explicit name@version references resolve too.
    resp2 = srv.handle(
        {"op": "predict", "model": "bcast@v1", "x": test.X[:1].tolist()}
    )
    assert resp2["ok"] and resp2["model"] == "bcast@v1"


def test_server_error_responses(server):
    srv, _ = server
    assert not srv.handle({"op": "nope"})["ok"]
    assert "not found" in srv.handle(
        {"op": "predict", "model": "absent", "x": [[1, 1, 65536]]}
    )["error"]
    assert "columns" in srv.handle({"op": "predict", "x": [[1, 1]]})["error"]
    assert "'x'" in srv.handle({"op": "predict"})["error"]
    assert not srv.handle({"op": "predict", "x": [["a", "b", "c"]]})["ok"]
    assert not srv.handle([1, 2, 3])["ok"]


def test_server_picks_up_republish_without_restart(server, bcast_data):
    srv, reg = server
    app, train, test = bcast_data
    before = srv.handle({"op": "predict", "x": test.X[:2].tolist()})
    newer = _fit(app, train, seed=11, rank=3)
    reg.publish("bcast", newer)
    after = srv.handle({"op": "predict", "x": test.X[:2].tolist()})
    assert before["model"] == "bcast@v1" and after["model"] == "bcast@v2"
    np.testing.assert_allclose(after["y"], newer.predict(test.X[:2]))


def test_serve_stdin_line_protocol(server, bcast_data, fitted):
    srv, _ = server
    _, _, test = bcast_data
    lines = io.StringIO(
        json.dumps({"op": "predict", "x": test.X[:2].tolist()})
        + "\n\nnot json\n"
        + json.dumps({"op": "ping"})
        + "\n"
    )
    out = io.StringIO()
    assert serve_stdin(srv, lines=lines, out=out) == 0
    responses = [json.loads(line) for line in out.getvalue().splitlines()]
    assert len(responses) == 3  # blank line skipped
    assert responses[0]["ok"] and responses[0]["n"] == 2
    np.testing.assert_allclose(responses[0]["y"], fitted.predict(test.X[:2]))
    assert not responses[1]["ok"] and "bad JSON" in responses[1]["error"]
    assert responses[2] == {"ok": True, "op": "ping"}


def test_server_microbatched_predictions_match(tmp_path, bcast_data, fitted):
    _, _, test = bcast_data
    reg = ModelRegistry(tmp_path)
    reg.publish("bcast", fitted)
    srv = ModelServer(reg, default_model="bcast", microbatch=True, max_delay_ms=5)
    try:
        expect = fitted.predict(test.X)
        results = {}

        def client(i):
            resp = srv.handle({"op": "predict", "x": test.X[i : i + 8].tolist()})
            results[i] = resp

        threads = [threading.Thread(target=client, args=(i,)) for i in (0, 8, 16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in (0, 8, 16):
            assert results[i]["ok"]
            np.testing.assert_allclose(results[i]["y"], expect[i : i + 8])
        engine = srv.engine_for("bcast")
        assert engine.stats()["queries"] == 24
    finally:
        srv.close()


class _InfModel:
    """Module-level (hence picklable) stub whose predictions overflow."""

    def predict(self, X):
        return np.full(len(np.atleast_2d(X)), np.inf)


class _BrokenModel:
    """Picklable stub that fails at predict time with a RuntimeError."""

    def predict(self, X):
        raise RuntimeError("internal model failure")


class _OddModel:
    """Picklable stub that fails with an unanticipated exception type."""

    def predict(self, X):
        raise IndexError("surprise")


def test_server_contains_runtime_errors(tmp_path):
    """Model-level RuntimeError becomes an ok:false response, never a crash."""
    reg = ModelRegistry(tmp_path)
    reg.publish("broken", _BrokenModel())
    srv = ModelServer(reg)
    resp = srv.handle({"op": "predict", "model": "broken", "x": [[1.0]]})
    assert not resp["ok"] and "internal model failure" in resp["error"]
    # The registry refuses to publish an unfitted minimal-state model at
    # publish time (the earlier failure point), not at serve time.
    from repro.core import CPRModel

    with pytest.raises(RuntimeError, match="not fitted"):
        reg.publish("unfitted", CPRModel())


def test_server_contains_arbitrary_exceptions_and_stdin_survives(tmp_path):
    """Any model exception -> ok:false; the stdin loop keeps serving."""
    reg = ModelRegistry(tmp_path)
    reg.publish("odd", _OddModel())
    srv = ModelServer(reg)
    resp = srv.handle({"op": "predict", "model": "odd", "x": [[1.0]]})
    assert not resp["ok"] and "IndexError" in resp["error"]
    lines = io.StringIO(
        json.dumps({"op": "predict", "model": "odd", "x": [[1.0]]})
        + "\n"
        + json.dumps({"op": "ping"})
        + "\n"
    )
    out = io.StringIO()
    assert serve_stdin(srv, lines=lines, out=out) == 0
    responses = [json.loads(line) for line in out.getvalue().splitlines()]
    assert not responses[0]["ok"]
    assert responses[1] == {"ok": True, "op": "ping"}  # server survived


def test_microbatched_model_errors_do_not_leak_batchers(tmp_path):
    """Model failures under microbatching must not abandon worker threads."""
    reg = ModelRegistry(tmp_path)
    reg.publish("broken", _BrokenModel())
    srv = ModelServer(reg, microbatch=True, max_delay_ms=0.0)
    try:
        before = sum(
            t.name == "repro-serve-microbatch" for t in threading.enumerate()
        )
        for _ in range(5):
            resp = srv.handle({"op": "predict", "model": "broken", "x": [[1.0]]})
            assert not resp["ok"] and "internal model failure" in resp["error"]
        after = sum(
            t.name == "repro-serve-microbatch" for t in threading.enumerate()
        )
        assert after - before <= 1  # one live batcher, zero abandoned ones
    finally:
        srv.close()


def test_microbatcher_mixed_widths_flush_separately():
    """Coalesced requests of different column counts must all succeed."""
    mb = MicroBatcher(lambda X: X.sum(axis=1), max_batch=64, max_delay_s=0.05)
    try:
        outs = {}

        def client(i, width):
            outs[i] = mb.submit(np.full((1, width), float(i)))

        threads = [
            threading.Thread(target=client, args=(i, 2 + (i % 2)))
            for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(6):
            width = 2 + (i % 2)
            np.testing.assert_allclose(outs[i], [float(i) * width])
    finally:
        mb.close()


def test_model_predict_validate_false_matches(bcast_data, fitted):
    _, _, test = bcast_data
    np.testing.assert_allclose(
        fitted.predict(test.X, validate=False), fitted.predict(test.X)
    )


def test_server_serializes_nonfinite_predictions_as_null(tmp_path):
    reg = ModelRegistry(tmp_path)
    reg.publish("inf", _InfModel())
    srv = ModelServer(reg)
    resp = srv.handle({"op": "predict", "model": "inf", "x": [[1.0], [2.0]]})
    assert resp["ok"] and resp["y"] == [None, None]
    json.loads(json.dumps(resp))  # strict-JSON clean (no Infinity token)


def test_server_engine_cache_is_bounded(tmp_path, bcast_data):
    app, train, _ = bcast_data
    reg = ModelRegistry(tmp_path)
    model = _fit(app, train)
    for i in range(4):
        reg.publish(f"m{i}", model)
    srv = ModelServer(reg, engine_cache_size=2)
    for i in range(4):
        assert srv.handle({"op": "predict", "model": f"m{i}", "x": [[4, 8, 2**20]]})["ok"]
    assert len(srv._engines) == 2  # oldest engines evicted, not accumulated


def test_registry_manifest_never_visible_half_written(tmp_path, fitted):
    """A non-serializable meta fails before any version is claimed."""
    reg = ModelRegistry(tmp_path)
    reg.publish("m", fitted)
    with pytest.raises(TypeError):
        reg.publish("m", fitted, meta={"bad": object()})
    assert reg.versions("m") == [1]  # no orphan v2 manifest
    assert reg.resolve("m").version == 1
    assert not list(reg._model_dir("m").glob("*.tmp"))


def test_registry_torn_latest_manifest_falls_back(tmp_path, bcast_data, fitted):
    """A manifest truncated on disk (torn write, partial copy) must not
    take ``name@latest`` down: resolution skips it and serves the newest
    readable predecessor.  Explicit versions still fail loudly."""
    _, _, test = bcast_data
    reg = ModelRegistry(tmp_path)
    reg.publish("m", fitted)
    reg.publish("m", fitted, meta={"tag": "v2"})
    v2_manifest = reg._model_dir("m") / "v0002.json"
    data = v2_manifest.read_bytes()
    v2_manifest.write_bytes(data[: len(data) // 2])  # torn mid-file

    fresh = ModelRegistry(tmp_path)
    mv = fresh.resolve("m")
    assert mv.version == 1
    np.testing.assert_allclose(
        fresh.load("m").predict(test.X[:4]), fitted.predict(test.X[:4])
    )
    with pytest.raises(KeyError):
        fresh.resolve("m", version=2)
    # The next publish claims v3 (numbering never reuses the torn slot)
    # and latest resolution heals forward.
    mv3 = fresh.publish("m", fitted)
    assert mv3.version == 3
    assert fresh.resolve("m").version == 3


def test_registry_all_manifests_torn_raises(tmp_path, fitted):
    reg = ModelRegistry(tmp_path)
    reg.publish("m", fitted)
    manifest = reg._model_dir("m") / "v0001.json"
    manifest.write_bytes(manifest.read_bytes()[:10])
    with pytest.raises(KeyError, match="no readable version"):
        ModelRegistry(tmp_path).resolve("m")


def test_atomic_write_fsyncs_file_and_directory(tmp_path, monkeypatch):
    """The durability contract: temp-file fsync *before* the rename, a
    directory fsync after — losing either reintroduces the crash window
    where a visible manifest points at unwritten blocks."""
    from repro.serve import registry as registry_mod

    synced = []
    real_fsync = os.fsync

    def spy_fsync(fd):
        # Record what kind of object each fsync covered.
        synced.append("dir" if stat.S_ISDIR(os.fstat(fd).st_mode) else "file")
        return real_fsync(fd)

    monkeypatch.setattr(registry_mod.os, "fsync", spy_fsync)
    target = tmp_path / "sub" / "manifest.json"
    registry_mod._atomic_write_bytes(target, b'{"v": 1}')
    assert target.read_bytes() == b'{"v": 1}'
    assert synced == ["file", "dir"]  # both, in write-ahead order
    assert not list(target.parent.glob("*.tmp"))  # nothing left behind


def test_server_concurrent_predict_while_republishing(tmp_path, bcast_data):
    """Stress: predictions racing republishes never see a torn/stale model.

    Extends the PR 4 registry guarantee to the full server path (engine
    cache + microbatcher + protocol): while publishers keep superseding
    ``m``, every concurrent ``predict`` response must (a) succeed and
    (b) equal — exactly — the prediction of one actually-published
    version, with the reported model ref matching the values.  A torn
    read (factors from one version, offset from another) or a stale
    digest-cache entry would produce a vector matching no version.
    """
    app, train, test = bcast_data
    Xq = test.X[:8]
    models = [_fit(app, train, seed=s, rank=2 + (s % 2)) for s in range(6)]
    expected = {}  # version -> prediction vector (versions are dense 1..N)
    reg = ModelRegistry(tmp_path, cache_size=3)
    srv = ModelServer(reg, default_model="m", microbatch=True, max_delay_ms=0.5)
    expected[1] = models[0].predict(Xq)
    reg.publish("m", models[0])

    stop = threading.Event()
    errors: list = []
    bad: list = []
    n_ok = [0]
    start = threading.Barrier(7)

    def publisher():
        try:
            start.wait()
            for i in range(1, 18):
                model = models[i % len(models)]
                # Compute the expectation *before* the version exists so
                # no reader can observe a version we cannot check.
                expected[1 + i] = model.predict(Xq)
                reg.publish("m", model)
                time.sleep(0.001)
        except BaseException as exc:  # noqa: BLE001 - collected for assertion
            errors.append(exc)
        finally:
            stop.set()

    def client():
        try:
            start.wait()
            while not stop.is_set() or n_ok[0] == 0:
                resp = srv.handle({"op": "predict", "x": Xq.tolist()})
                if not resp.get("ok"):
                    bad.append(resp)
                    continue
                version = int(resp["model"].rsplit("@v", 1)[1])
                want = expected.get(version)
                if want is None or not np.allclose(
                    resp["y"], want, rtol=1e-12, atol=0.0
                ):
                    bad.append(resp)
                n_ok[0] += 1
        except BaseException as exc:  # noqa: BLE001 - collected for assertion
            errors.append(exc)

    threads = [threading.Thread(target=publisher)]
    threads += [threading.Thread(target=client) for _ in range(6)]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
    finally:
        srv.close()
    assert not errors
    assert not bad, f"{len(bad)} response(s) saw a torn or stale model"
    assert n_ok[0] > 0
    # Every client eventually converged on the final published version.
    final = srv.handle({"op": "predict", "x": Xq.tolist()})
    assert final["model"] == "m@v18"
    np.testing.assert_allclose(final["y"], expected[18])


def test_registry_publish_hooks_fire_and_unsubscribe(tmp_path, fitted):
    reg = ModelRegistry(tmp_path)
    seen: list = []
    hook = lambda mv: seen.append(mv.ref)
    reg.add_publish_hook(hook)
    reg.publish("m", fitted)
    reg.publish("m", fitted)
    assert seen == ["m@v1", "m@v2"]
    reg.remove_publish_hook(hook)
    reg.publish("m", fitted)
    assert seen == ["m@v1", "m@v2"]  # unsubscribed


def test_engine_swap_model_is_atomic_under_load(bcast_data):
    """Predictions during swap_model match exactly one of the two models."""
    app, train, test = bcast_data
    a = _fit(app, train, seed=0)
    b = _fit(app, train, seed=7, rank=3)
    Xq = test.X[:4]
    ya, yb = a.predict(Xq), b.predict(Xq)
    engine = PredictionEngine(a, name="m@v1")
    bad: list = []
    stop = threading.Event()

    def reader():
        while not stop.is_set():
            y = engine.predict(Xq)
            if not (np.allclose(y, ya) or np.allclose(y, yb)):
                bad.append(y)

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for t in threads:
        t.start()
    for i in range(40):
        engine.swap_model(b if i % 2 == 0 else a, name=f"m@v{2 + i}")
    stop.set()
    for t in threads:
        t.join(timeout=10)
    assert not bad
    assert engine.name == "m@v41"
    np.testing.assert_allclose(engine.predict(Xq), ya)  # ends on model a


# -- serve-path bugfix sweep (fleet PR) ----------------------------------------


class _SlowModel:
    """Picklable stub that holds a predict slot long enough to overlap."""

    def predict(self, X):
        time.sleep(0.3)
        return np.zeros(len(np.atleast_2d(X)))


class _MixedModel:
    """Picklable stub returning finite and non-finite predictions."""

    def predict(self, X):
        y = np.arange(float(len(np.atleast_2d(X))))
        y[1::3] = np.inf
        y[2::3] = np.nan
        return y


def test_predict_after_close_never_reinstalls_batcher(tmp_path, bcast_data, fitted):
    """The close/predict race must not leak a fresh batcher + thread.

    Before the fix, a predict thread that looked up a missing batcher
    and then lost the race with ``close()`` installed a brand-new
    batcher into a drained map — unreachable by any future close, its
    worker thread alive for the life of the process.
    """
    _, _, test = bcast_data
    reg = ModelRegistry(tmp_path)
    reg.publish("m", fitted)
    srv = ModelServer(reg, default_model="m", microbatch=True)
    engine = srv.engine_for("m")  # cached before close, as in the race
    srv.close()
    before = sum(
        t.name == "repro-serve-microbatch" for t in threading.enumerate()
    )
    resp = srv.handle({"op": "predict", "x": test.X[:2].tolist()})
    assert resp["ok"]  # still answers (directly on the engine)
    np.testing.assert_allclose(resp["y"], engine.predict(test.X[:2]))
    after = sum(
        t.name == "repro-serve-microbatch" for t in threading.enumerate()
    )
    assert srv._batchers == {}
    assert after == before


def test_eviction_churn_does_not_accumulate_batcher_threads(tmp_path, bcast_data):
    """Engine-cache churn under microbatching closes every evicted batcher."""
    app, train, test = bcast_data
    reg = ModelRegistry(tmp_path)
    model = _fit(app, train)
    for i in range(3):
        reg.publish(f"m{i}", model)
    srv = ModelServer(reg, microbatch=True, engine_cache_size=1, max_delay_ms=0.0)
    try:
        before = sum(
            t.name == "repro-serve-microbatch" for t in threading.enumerate()
        )
        for round_ in range(4):
            for i in range(3):  # every predict evicts the previous engine
                resp = srv.handle(
                    {"op": "predict", "model": f"m{i}", "x": test.X[:1].tolist()}
                )
                assert resp["ok"]
        # At most the one live batcher on top of the baseline — evicted
        # ones were closed, and their worker threads have exited.
        deadline = time.time() + 5
        while time.time() < deadline:
            alive = sum(
                t.name == "repro-serve-microbatch" for t in threading.enumerate()
            )
            if alive - before <= 1:
                break
            time.sleep(0.01)
        assert alive - before <= 1
        assert len(srv._batchers) <= 1
    finally:
        srv.close()


def test_microbatcher_rejects_wrong_length_flush():
    """A flush_fn returning the wrong row count fails loudly, not silently.

    The old slicing handed the first submitter a wrong-length vector and
    downstream submitters their neighbours' predictions.
    """
    mb = MicroBatcher(lambda X: np.zeros(len(X) + 1), max_batch=8, max_delay_s=0.0)
    try:
        with pytest.raises(RuntimeError, match="refusing to mis-slice"):
            mb.submit([[1.0], [2.0]])
    finally:
        mb.close()
    mb = MicroBatcher(lambda X: np.zeros((len(X), 1)), max_batch=8, max_delay_s=0.0)
    try:
        with pytest.raises(RuntimeError, match="refusing to mis-slice"):
            mb.submit([[1.0]])
    finally:
        mb.close()


def test_server_sheds_past_max_inflight(tmp_path):
    """Admission control: excess concurrent predicts get 503 overloaded."""
    reg = ModelRegistry(tmp_path)
    reg.publish("slow", _SlowModel())
    srv = ModelServer(reg, default_model="slow", max_inflight=1)
    first = {}

    def occupant():
        first.update(srv.handle({"op": "predict", "x": [[1.0]]}))

    t = threading.Thread(target=occupant)
    t.start()
    time.sleep(0.1)  # let the occupant take the only slot
    shed = srv.handle({"op": "predict", "x": [[1.0]]})
    t.join()
    assert first["ok"]
    assert shed == {"ok": False, "error": "overloaded", "code": 503}
    stats = srv.handle({"op": "stats"})
    assert stats["admission"]["max_inflight"] == 1
    assert stats["admission"]["shed"] == 1
    assert stats["admission"]["inflight"] == 0  # slots released either way


def test_microbatcher_sheds_past_max_pending():
    from repro.serve import Overloaded

    flushing = threading.Event()
    release = threading.Event()

    def gated(X):
        flushing.set()
        release.wait(timeout=10)
        return X[:, 0]

    mb = MicroBatcher(gated, max_batch=1, max_delay_s=0.0, max_pending=1)
    results: dict = {}
    try:
        # A is dequeued by the worker and blocks inside the flush.
        ta = threading.Thread(target=lambda: results.update(a=mb.submit([[1.0]])))
        ta.start()
        assert flushing.wait(timeout=10)
        # B fills the single pending slot behind the busy worker.
        tb = threading.Thread(target=lambda: results.update(b=mb.submit([[2.0]])))
        tb.start()
        deadline = time.time() + 5
        while time.time() < deadline:
            with mb._submit_lock:
                if mb._pending >= 1:
                    break
            time.sleep(0.005)
        # C must shed immediately instead of queueing without bound.
        with pytest.raises(Overloaded):
            mb.submit([[3.0]])
        release.set()
        ta.join(timeout=10)
        tb.join(timeout=10)
        # Admitted work still completed with the right slices.
        np.testing.assert_allclose(results["a"], [1.0])
        np.testing.assert_allclose(results["b"], [2.0])
        # ... and the shed did not consume a pending slot.
        with mb._submit_lock:
            assert mb._pending == 0
    finally:
        release.set()
        mb.close()


def test_server_mixed_finite_nonfinite_predictions(tmp_path):
    reg = ModelRegistry(tmp_path)
    reg.publish("mixed", _MixedModel())
    srv = ModelServer(reg)
    resp = srv.handle({"op": "predict", "model": "mixed", "x": [[float(i)] for i in range(6)]})
    assert resp["ok"]
    assert resp["y"] == [0.0, None, None, 3.0, None, None]
    json.loads(json.dumps(resp))  # strict-JSON clean


def test_server_error_codes_distinguish_missing_from_malformed(server):
    srv, _ = server
    missing = srv.handle({"op": "predict", "model": "absent", "x": [[1, 1, 65536]]})
    assert not missing["ok"] and missing["code"] == 404
    missing_version = srv.handle(
        {"op": "predict", "model": "bcast", "version": 99, "x": [[1, 1, 65536]]}
    )
    assert not missing_version["ok"] and missing_version["code"] == 404
    malformed = srv.handle({"op": "predict", "x": [[1, 1]]})
    assert not malformed["ok"] and "code" not in malformed  # plain 400


def test_registry_names_tolerates_missing_models_dir(tmp_path, fitted):
    import shutil

    reg = ModelRegistry(tmp_path)
    reg.publish("m", fitted)
    assert reg.names() == ["m"]
    shutil.rmtree(tmp_path / "models")
    assert reg.names() == []
    assert reg.versions("m") == []
    assert "m" not in reg


def test_registry_latest_cache_sees_external_publish(tmp_path, fitted):
    """The mtime-keyed latest pointer must never pin a stale version.

    ``b`` resolves (and may cache) between two publishes that go through
    a *different* registry object — exactly what ``b``'s local-publish
    invalidation cannot see.  Both the granularity guard and the mtime
    comparison are exercised: a publish landing within the stamp's
    settle window defeats caching, a later one dirties the mtime.
    """
    a = ModelRegistry(tmp_path)
    b = ModelRegistry(tmp_path)
    a.publish("m", fitted)
    assert b.resolve("m").version == 1
    a.publish("m", fitted)
    assert b.resolve("m").version == 2
    time.sleep(0.06)  # past the settle window: the next resolve caches
    assert b.resolve("m").version == 2
    a.publish("m", fitted)
    assert b.resolve("m").version == 3
    # Memoized manifests stay correct for explicit versions.
    assert b.resolve("m", 1).version == 1
    assert b.resolve("m", 1).digest == a.resolve("m", 1).digest


def test_registry_resolve_hot_path_is_one_stat(tmp_path, fitted):
    """After the settle window, repeated resolves stop rescanning."""
    reg = ModelRegistry(tmp_path)
    reg.publish("m", fitted)
    time.sleep(0.06)
    reg.resolve("m")  # caches the latest pointer
    calls = []
    original = reg._version_numbers
    reg._version_numbers = lambda name: (calls.append(name), original(name))[1]
    try:
        for _ in range(5):
            assert reg.resolve("m").version == 1
        assert calls == []  # pointer cache hit: no directory scans
    finally:
        reg._version_numbers = original


# -- publish-after-fit hooks ---------------------------------------------------


def test_run_tune_job_publishes_best_model(tmp_path, bcast_data):
    from repro.experiments.harness import run_tune_job

    record = run_tune_job(
        app="bcast",
        model="cpr",
        n_train=256,
        n_test=64,
        grid=[{"cells": 4, "rank": 2, "max_sweeps": 5}],
        seed=0,
        publish_dir=str(tmp_path),
    )
    assert not record["skipped"]
    pub = record["published"]
    assert pub["name"] == "bcast-cpr" and pub["version"] == 1
    reg = ModelRegistry(tmp_path)
    mv = reg.resolve("bcast-cpr")
    assert mv.digest == pub["digest"]
    assert mv.meta["model"] == "cpr" and mv.meta["params"]["rank"] == 2
    model = reg.load("bcast-cpr")
    _, _, test = bcast_data
    assert np.all(model.predict(test.X) > 0)


def test_runtime_on_result_hook_skips_cache_hits(tmp_path):
    from repro.runtime import JobSpec, Runtime

    spec = JobSpec("repro.experiments.harness:run_tune_job", {
        "app": "bcast", "model": "cpr", "n_train": 128, "n_test": 32,
        "grid": [{"cells": 4, "rank": 2, "max_sweeps": 3}], "seed": 0,
    })
    calls: list = []
    rt = Runtime(cache_dir=tmp_path / "cache",
                 on_result=lambda s, r: calls.append((s.key, r["model"])))
    first = rt.run([spec])
    assert calls == [(spec.key, "cpr")]
    again = rt.run([spec])  # cache hit: hook must not re-fire
    assert calls == [(spec.key, "cpr")]
    assert again == first and rt.hits == 1

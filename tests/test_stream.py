"""Streaming pipeline: buffer journal, refit policy, drift, republish, resume."""
from __future__ import annotations

import json

import numpy as np
import pytest

from repro.apps import Broadcast
from repro.datasets import generate_dataset
from repro.serve import ModelRegistry, ModelServer
from repro.stream import (
    DriftMonitor,
    IncrementalTrainer,
    ObservationBuffer,
    StreamSession,
    replay_application,
    run_stream_job,
    stream_job_spec,
)
from repro.stream.runner import make_model_factory
from repro.stream.trainer import known_cell_mask


@pytest.fixture(scope="module")
def bcast():
    app = Broadcast()
    train = generate_dataset(app, 512, seed=0)
    return app, train


def _factory(app, **kw):
    params = dict(cells=4, rank=2, max_sweeps=5, seed=0)
    params.update(kw)
    return make_model_factory(app.space, **params)


# -- observation buffer --------------------------------------------------------


class TestObservationBuffer:
    def test_append_window_and_flush(self):
        buf = ObservationBuffer(window=10)
        X = np.arange(24, dtype=float).reshape(12, 2)
        y = np.arange(1.0, 13.0)
        assert buf.append(X[:5], y[:5]) == (0, 5)
        assert buf.append(X[5:], y[5:]) == (5, 12)
        Xp, yp = buf.since(0)
        assert len(yp) == 12 and buf.flushed == 0
        buf.mark_flushed()
        assert buf.flushed == 12
        # Window keeps the last 10; older rows were trimmed.
        Xw, yw = buf.window_arrays()
        np.testing.assert_array_equal(yw, y[2:])
        assert buf.n_retained == 10 and buf.n_seen == 12
        with pytest.raises(ValueError, match="trimmed"):
            buf.since(0)

    def test_refit_arrays_cover_pending_beyond_window(self):
        """A pending tail longer than the window is never dropped by a refit."""
        buf = ObservationBuffer(window=4)
        X = np.arange(10, dtype=float)[:, None]
        buf.append(X, np.arange(1.0, 11.0))
        Xw, yw = buf.window_arrays()
        assert len(yw) == 4  # the rolling window itself stays bounded
        Xr, yr = buf.refit_arrays()
        np.testing.assert_array_equal(yr, np.arange(1.0, 11.0))  # full tail
        buf.mark_flushed()
        _, yr2 = buf.refit_arrays()  # nothing pending: back to the window
        np.testing.assert_array_equal(yr2, np.arange(7.0, 11.0))

    def test_pending_survives_window_trim(self):
        buf = ObservationBuffer(window=2)
        X = np.zeros((6, 1))
        buf.append(X, np.ones(6))
        # Nothing flushed: all six stay even though window is 2.
        assert buf.n_retained == 6
        Xp, yp = buf.since(buf.flushed)
        assert len(yp) == 6

    def test_empty_append_is_noop(self):
        buf = ObservationBuffer()
        assert buf.append(np.empty((0, 2)), np.empty(0)) == (0, 0)
        assert buf.n_seen == 0

    def test_journal_roundtrip(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        buf = ObservationBuffer(journal=path)
        X = np.array([[1.0, 2.0], [3.0, 4.0]])
        buf.append(X, [5.0, 6.0])
        buf.append(X + 10, [7.0, 8.0])
        buf.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"seq": 0, "x": [[1, 2], [3, 4]], "y": [5, 6]}
        replayed = ObservationBuffer.open(path)
        assert replayed.n_seen == 4
        Xr, yr = replayed.since(0)
        np.testing.assert_array_equal(yr, [5.0, 6.0, 7.0, 8.0])
        # Continues appending to the same journal.
        replayed.append(X, [9.0, 10.0])
        replayed.close()
        assert ObservationBuffer.open(path).n_seen == 6

    def test_journal_torn_final_line_skipped_and_truncated(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        buf = ObservationBuffer(journal=path)
        buf.append([[1.0]], [2.0])
        buf.close()
        with path.open("a") as fh:
            fh.write('{"seq": 1, "x": [[3.0]], "y"')  # crash mid-write
        replayed = ObservationBuffer.open(path)
        assert replayed.n_seen == 1  # torn tail dropped, prefix intact
        # Recovery truncates the torn bytes, so post-recovery appends land
        # on a clean line boundary and survive further reopens intact.
        replayed.append([[4.0]], [5.0])
        replayed.append([[6.0]], [7.0])
        replayed.close()
        again = ObservationBuffer.open(path)
        assert again.n_seen == 3
        _, y = again.since(0)
        np.testing.assert_array_equal(y, [2.0, 5.0, 7.0])

    def test_journal_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text('not json\n{"seq": 0, "x": [[1.0]], "y": [2.0]}\n')
        with pytest.raises(ValueError, match="corrupt journal"):
            ObservationBuffer.open(path)


# -- drift monitor -------------------------------------------------------------


class TestDriftMonitor:
    def test_rolling_error_and_trigger(self):
        mon = DriftMonitor(window=8, threshold=0.2, min_count=4)
        y = np.ones(4)
        assert not mon.should_refit()  # empty
        mon.record(y * np.e**0.1, y)  # MLogQ 0.1 < threshold
        assert not mon.should_refit()
        mon.record(y * np.e**0.9, y)  # pushes the rolling mean over
        assert mon.error == pytest.approx(0.5)
        assert mon.should_refit() and mon.n_triggers == 1
        mon.reset()
        assert mon.count == 0 and np.isnan(mon.error)

    def test_min_count_gates_trigger(self):
        mon = DriftMonitor(window=16, threshold=0.1, min_count=10)
        mon.record(np.full(4, np.e), np.ones(4))  # error 1.0 but count 4
        assert not mon.should_refit()

    def test_record_is_scale_free(self):
        mon = DriftMonitor()
        a = mon.record(np.array([2.0]), np.array([1.0]))
        b = mon.record(np.array([2000.0]), np.array([1000.0]))
        assert a == pytest.approx(b)


# -- trainer policy ------------------------------------------------------------


class TestIncrementalTrainer:
    def test_initial_fit_then_partial(self, bcast):
        app, train = bcast
        tr = IncrementalTrainer(_factory(app))
        first = tr.update(train.X[:128], train.y[:128], train.X[:128], train.y[:128])
        assert first["action"] == "fit"
        second = tr.update(
            train.X[128:192], train.y[128:192], train.X[:192], train.y[:192]
        )
        assert second["action"] == "partial"
        assert tr.n_partial == 1 and tr.n_refit == 0

    def test_known_cell_mask_dedups_against_observed_cells(self, bcast):
        app, train = bcast
        model = _factory(app)().fit(train.X, train.y)
        assert known_cell_mask(model, train.X).all()  # its own cells are known
        tr = IncrementalTrainer(_factory(app))
        tr.adopt(model)
        placement = tr.classify(train.X[:50])
        assert placement == {"known": 50, "new_cells": 0, "out_of_domain": 0}

    def test_classify_survives_out_of_range_categorical(self):
        """A bad category index counts as out-of-domain, never a crash."""
        from repro.apps import Kripke

        app = Kripke()
        train = generate_dataset(app, 256, seed=0)
        tr = IncrementalTrainer(_factory(app))
        tr.update(train.X, train.y, train.X, train.y)
        bad = train.X[:4].copy()
        j = app.space.index_of("solver")
        bad[0, j] = 99.0  # no such category
        placement = tr.classify(bad)
        assert placement["out_of_domain"] == 1
        assert placement["known"] + placement["new_cells"] == 3

    def test_domain_widening_triggers_refit(self, bcast):
        app, train = bcast
        half = train.X[:, 2] < np.median(train.X[:, 2])  # small messages only
        tr = IncrementalTrainer(_factory(app))
        tr.update(train.X[half], train.y[half], train.X[half], train.y[half])
        grid_before = tr.model.grid_
        out = train.X[~half][:32]
        record = tr.update(out, train.y[~half][:32], train.X[:256], train.y[:256])
        assert record["action"] == "refit" and record["reason"] == "domain"
        assert record["placement"]["out_of_domain"] > 0
        assert tr.model.grid_ is not grid_before  # grid re-ascertained

    def test_drift_triggers_refit_and_resets_monitor(self, bcast):
        app, train = bcast
        mon = DriftMonitor(window=8, threshold=0.1, min_count=2)
        tr = IncrementalTrainer(_factory(app), monitor=mon)
        tr.update(train.X[:128], train.y[:128], train.X[:128], train.y[:128])
        mon.record(np.full(4, np.e**2), np.ones(4))  # large sustained error
        record = tr.update(
            train.X[128:160], train.y[128:160], train.X[:160], train.y[:160]
        )
        assert record["action"] == "refit" and record["reason"] == "drift"
        assert mon.count == 0  # reset after refit
        assert tr.refit_reasons == {"drift": 1}

    def test_refit_through_rank_change_keeps_updating(self, bcast):
        """Drifting through a rank-changing refit must not shape-error.

        A refit that lands on a different CP rank invalidates everything
        keyed to the old rank — cached ObservationPlan Khatri-Rao buffers
        and warm-start factors.  The trainer drops the old model
        wholesale, so the post-change ``partial_fit`` warm-starts at the
        *new* rank against a fresh plan; this is the regression test that
        the bookkeeping (counter, record, monitor reset) rides along.
        """
        app, train = bcast
        ranks = iter([2, 4])
        base = _factory(app)

        def flipping_factory():
            m = base()
            m.rank = next(ranks)
            return m

        mon = DriftMonitor(window=8, threshold=0.1, min_count=2)
        tr = IncrementalTrainer(flipping_factory, monitor=mon)
        tr.update(train.X[:128], train.y[:128], train.X[:128], train.y[:128])
        assert tr.model.adapted_rank_ == 2
        mon.record(np.full(4, np.e**2), np.ones(4))  # sustained drift
        record = tr.update(
            train.X[128:160], train.y[128:160], train.X[:160], train.y[:160]
        )
        assert record["action"] == "refit"
        assert record["rank"] == 4
        assert record["rank_change"] == {"from": 2, "to": 4}
        assert tr.n_rank_changes == 1
        assert mon.count == 0  # stale window dropped with the old model
        # The next partial flows through the rank-4 model without shape
        # errors (old rank-2 plan/factors are gone with the old model).
        rec = tr.update(
            train.X[160:192], train.y[160:192], train.X[:192], train.y[:192]
        )
        assert rec["action"] == "partial"
        assert tr.model.adapted_rank_ == 4
        assert tr.to_record()["rank"] == 4
        assert tr.to_record()["rank_changes"] == 1

    def test_session_monitor_reset_when_trainer_has_none(self, bcast):
        """A refit resets the *session's* drift window too, even when the
        injected trainer scores through no (or another) monitor."""
        app, train = bcast
        monitor = DriftMonitor(window=32, threshold=1e9, min_count=1)
        session = StreamSession(
            None, "m", _factory(app),
            monitor=monitor, trainer=IncrementalTrainer(_factory(app)),
        )
        half = train.X[:, 2] < np.median(train.X[:, 2])
        X_in, y_in = train.X[half], train.y[half]
        session.observe(X_in, y_in)  # initial fit: grid covers all of half
        # Re-measurements of seen configurations: partial update, and the
        # session monitor accumulates prequential evidence.
        record = session.observe(X_in[:32], y_in[:32])
        assert record["action"] == "partial"
        assert monitor.count > 0
        # Out-of-domain rows force a refit through the trainer (which has
        # no monitor of its own): the session monitor must still reset.
        record = session.observe(train.X[~half][:32], train.y[~half][:32])
        assert record["action"] == "refit"
        assert monitor.count == 0

    def test_empty_flush_is_noop(self, bcast):
        app, train = bcast
        tr = IncrementalTrainer(_factory(app))
        assert tr.update(np.empty((0, 3)), np.empty(0), np.empty((0, 3)),
                         np.empty(0))["action"] == "noop"
        tr.update(train.X[:64], train.y[:64], train.X[:64], train.y[:64])
        rec = tr.update(np.empty((0, 3)), np.empty(0), train.X[:64], train.y[:64])
        assert rec["action"] == "noop"


# -- session + registry + server -----------------------------------------------


class TestStreamSession:
    def test_refits_republish_and_server_picks_up(self, tmp_path, bcast):
        app, _ = bcast
        registry = ModelRegistry(tmp_path / "reg")
        server = ModelServer(registry, default_model="bcast-stream")
        hook_versions = []
        registry.add_publish_hook(lambda mv: hook_versions.append(mv.version))
        factory = _factory(app)
        monitor = DriftMonitor(window=32, threshold=0.2, min_count=16)
        session = StreamSession(
            registry, "bcast-stream", factory, monitor=monitor,
            trainer=IncrementalTrainer(factory, monitor=monitor),
        )
        summary = replay_application(app, session, 200, batch=32, seed=0)
        assert summary["trainer"]["fit"] == 1
        assert summary["republished"] >= 1  # at least one auto-republish
        assert summary["published_versions"] == hook_versions
        assert registry.resolve("bcast-stream").version == hook_versions[-1]
        # The server serves the latest version without any restart.
        resp = server.handle({"op": "predict", "x": [[4, 8, 2**20]]})
        assert resp["ok"]
        assert resp["model"] == f"bcast-stream@v{hook_versions[-1]}"
        # Published manifests carry the stream cursor for resume.
        assert registry.resolve("bcast-stream").meta["stream_seq"] <= 200

    def test_resume_from_journal_continues_stream(self, tmp_path, bcast):
        app, _ = bcast
        registry = ModelRegistry(tmp_path / "reg")
        journal = tmp_path / "stream.jsonl"
        factory = _factory(app)

        def make_session(resume):
            monitor = DriftMonitor(window=32, threshold=0.2, min_count=16)
            trainer = IncrementalTrainer(factory, monitor=monitor)
            if resume:
                return StreamSession.resume(
                    registry, "m", journal, factory,
                    monitor=monitor, trainer=trainer,
                )
            return StreamSession(
                registry, "m", factory,
                buffer=ObservationBuffer(journal=journal),
                monitor=monitor, trainer=trainer,
            )

        first = make_session(resume=False)
        replay_application(app, first, 150, batch=32, seed=0)
        first.buffer.close()
        consumed = registry.resolve("m").meta["stream_seq"]

        resumed = make_session(resume=True)
        assert resumed.resumed_from == consumed
        assert resumed.buffer.n_seen == 150
        assert resumed.model is not None  # adopted the published model
        pending = resumed.buffer.n_seen - resumed.buffer.flushed
        record = resumed.flush()  # absorb the tail the publish missed
        if pending:
            assert record["action"] in ("partial", "refit")
        # The resumed model keeps absorbing fresh traffic.
        more = replay_application(app, resumed, 50, batch=25, seed=1)
        resumed.buffer.close()
        assert more["n_observations"] == 200
        assert resumed.buffer.flushed == 200
        # The trainer updates a *private copy*: the registry's cached
        # object must still serialize to exactly the published digest.
        from repro.utils.serialization import model_digest

        mv = registry.resolve("m")
        assert model_digest(registry.load("m")) == mv.digest

    def test_resume_without_published_model_fits_fresh(self, tmp_path, bcast):
        app, train = bcast
        journal = tmp_path / "j.jsonl"
        buf = ObservationBuffer(journal=journal)
        buf.append(train.X[:64], train.y[:64])
        buf.close()
        session = StreamSession.resume(
            ModelRegistry(tmp_path / "reg"), "fresh", journal, _factory(app)
        )
        assert session.model is None and session.resumed_from is None
        record = session.flush()
        assert record["action"] == "fit"
        assert session.published_versions == [1]


# -- runtime integration -------------------------------------------------------


class TestStreamJobs:
    def test_run_stream_job_record_is_deterministic(self):
        kw = dict(app="bcast", n=96, batch=32, seed=3, cells=4, rank=2,
                  max_sweeps=5, drift_min_count=16)
        a = run_stream_job(**kw)
        b = run_stream_job(**kw)
        assert a == b
        assert a["trainer"]["fit"] == 1
        assert a["n_observations"] == 96

    def test_stream_job_spec_cacheable(self, tmp_path):
        from repro.runtime import Runtime

        spec = stream_job_spec(app="bcast", n=64, batch=32, seed=0, cells=4,
                               rank=2, max_sweeps=5, drift_min_count=16)
        assert spec.fn == "repro.stream.runner:run_stream_job"
        rt = Runtime(cache_dir=tmp_path)
        first = rt.run([spec])
        again = rt.run([spec])
        assert again == first and rt.hits == 1 and rt.executed == 1

    def test_cli_main_smoke(self, tmp_path, capsys):
        from repro.stream.__main__ import main

        assert main([
            "--app", "bcast", "--registry", str(tmp_path / "reg"),
            "--n", "64", "--batch", "32", "--cells", "4", "--rank", "2",
            "--max-sweeps", "5", "--journal", str(tmp_path / "j.jsonl"),
        ]) == 0
        out = capsys.readouterr().out
        assert "[stream] done:" in out and "fit=1" in out
        # Resume path prints its cursor line.
        assert main([
            "--app", "bcast", "--registry", str(tmp_path / "reg"),
            "--n", "32", "--batch", "32", "--cells", "4", "--rank", "2",
            "--max-sweeps", "5", "--journal", str(tmp_path / "j.jsonl"),
            "--seed", "1",
        ]) == 0
        assert "[stream] resume:" in capsys.readouterr().out

"""Tests for Eq. 5 multilinear interpolation and fringe extrapolation."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid import CategoricalMode, LogMode, TensorGrid, UniformMode
from repro.core.interp import interpolate, interpolation_weights


def _uniform_grid_2d():
    return TensorGrid([
        UniformMode("a", 0.0, 8.0, 8),
        UniformMode("b", 0.0, 8.0, 8),
    ])


class TestWeights:
    def test_interior_weights_sum_to_one(self):
        g = _uniform_grid_2d()
        X = np.array([[3.3, 4.7], [0.9, 7.2]])
        lo, hi, w_lo, w_hi, active = interpolation_weights(g, X)
        np.testing.assert_allclose(w_lo + w_hi, 1.0)
        assert active.all()

    def test_interior_weights_nonnegative(self):
        g = _uniform_grid_2d()
        # strictly between first and last midpoints
        X = np.array([[1.0, 6.5]])
        _, _, w_lo, w_hi, _ = interpolation_weights(g, X)
        assert np.all(w_lo >= 0) and np.all(w_hi >= 0)

    def test_fringe_weights_signed_but_affine(self):
        g = _uniform_grid_2d()
        # below the first midpoint (0.5): linear extrapolation territory
        X = np.array([[0.1, 4.0]])
        _, _, w_lo, w_hi, _ = interpolation_weights(g, X)
        assert w_lo[0, 0] > 1.0 and w_hi[0, 0] < 0.0
        np.testing.assert_allclose(w_lo + w_hi, 1.0)

    def test_midpoint_exact_hit(self):
        g = _uniform_grid_2d()
        X = np.array([[2.5, 3.5]])  # exact midpoints of cells 2 and 3
        lo, hi, w_lo, w_hi, _ = interpolation_weights(g, X)
        assert w_lo[0, 0] == pytest.approx(1.0)
        assert w_hi[0, 0] == pytest.approx(0.0)

    def test_categorical_mode_inactive(self):
        g = TensorGrid([UniformMode("a", 0, 4, 4), CategoricalMode("c", 3)])
        X = np.array([[2.0, 1.0]])
        lo, hi, w_lo, w_hi, active = interpolation_weights(g, X)
        assert not active[1]
        assert lo[0, 1] == hi[0, 1] == 1
        assert w_lo[0, 1] == 1.0 and w_hi[0, 1] == 0.0

    def test_explicit_active_mask_validates(self):
        g = TensorGrid([UniformMode("a", 0, 4, 4), CategoricalMode("c", 3)])
        with pytest.raises(ValueError):
            interpolation_weights(g, np.array([[1.0, 0.0]]),
                                  active=np.array([True, True]))

    def test_single_cell_mode_inactive(self):
        g = TensorGrid([UniformMode("a", 0, 4, 1), UniformMode("b", 0, 4, 4)])
        _, _, _, _, active = interpolation_weights(g, np.array([[1.0, 1.0]]))
        assert not active[0] and active[1]


class TestInterpolate:
    def test_exactly_reproduces_multilinear_function(self):
        """Eq. 5 on elements of a bilinear function must be exact."""
        g = _uniform_grid_2d()
        ma, mb = g.modes[0].midpoints, g.modes[1].midpoints

        def corner_eval(idx):
            return 2.0 * ma[idx[:, 0]] + 3.0 * mb[idx[:, 1]] + 1.0

        gen = np.random.default_rng(0)
        X = gen.uniform(0.5, 7.5, size=(100, 2))  # inside midpoint hull
        pred = interpolate(g, corner_eval, X)
        np.testing.assert_allclose(pred, 2.0 * X[:, 0] + 3.0 * X[:, 1] + 1.0,
                                   rtol=1e-12)

    def test_exact_on_product_form_bilinear(self):
        g = _uniform_grid_2d()
        ma, mb = g.modes[0].midpoints, g.modes[1].midpoints

        def corner_eval(idx):
            return ma[idx[:, 0]] * mb[idx[:, 1]]

        gen = np.random.default_rng(1)
        X = gen.uniform(0.5, 7.5, size=(50, 2))
        np.testing.assert_allclose(
            interpolate(g, corner_eval, X), X[:, 0] * X[:, 1], rtol=1e-12
        )

    def test_log_mode_interpolates_in_log_space(self):
        g = TensorGrid([LogMode("a", 1.0, 256.0, 8)])
        mids_h = g.modes[0].midpoints_h

        def corner_eval(idx):
            return 5.0 * mids_h[idx[:, 0]]  # linear in log(x)

        X = np.array([[3.0], [10.0], [100.0]])
        np.testing.assert_allclose(
            interpolate(g, corner_eval, X), 5.0 * np.log(X[:, 0]), rtol=1e-12
        )

    def test_fringe_is_linear_extrapolation(self):
        g = TensorGrid([UniformMode("a", 0.0, 8.0, 8)])
        mids = g.modes[0].midpoints

        def corner_eval(idx):
            return 2.0 * mids[idx[:, 0]]

        # beyond the last midpoint (7.5) but inside the domain
        X = np.array([[7.9], [0.05]])
        np.testing.assert_allclose(
            interpolate(g, corner_eval, X), 2.0 * X[:, 0], rtol=1e-12
        )

    def test_categorical_passthrough(self):
        g = TensorGrid([CategoricalMode("c", 3), UniformMode("b", 0, 4, 4)])
        table = np.array([10.0, 20.0, 30.0])
        mb = g.modes[1].midpoints

        def corner_eval(idx):
            return table[idx[:, 0]] + mb[idx[:, 1]]

        X = np.array([[0.0, 2.0], [2.0, 2.0]])
        np.testing.assert_allclose(
            interpolate(g, corner_eval, X), [12.0, 32.0]
        )

    def test_active_mask_disables_interpolation(self):
        g = _uniform_grid_2d()
        calls = []

        def corner_eval(idx):
            calls.append(idx.copy())
            return np.ones(len(idx))

        interpolate(g, corner_eval, np.array([[3.3, 4.7]]),
                    active=np.array([True, False]))
        # The fused blend makes exactly one stacked call, covering only the
        # 2 corners of the single active mode (not 4).
        assert len(calls) == 1
        assert calls[0].shape == (2, 2)
        # The inactive mode's index is fixed at its cell in both corners.
        assert np.all(calls[0][:, 1] == calls[0][0, 1])

    def test_weights_partition_constant_function(self):
        """Interpolating a constant must return the constant everywhere."""
        g = TensorGrid([
            LogMode("a", 1, 1024, 6),
            UniformMode("b", 0, 1, 4),
            CategoricalMode("c", 5),
        ])
        gen = np.random.default_rng(2)
        X = np.column_stack([
            np.exp(gen.uniform(0, np.log(1024), 200)),
            gen.uniform(0, 1, 200),
            gen.integers(0, 5, 200).astype(float),
        ])
        pred = interpolate(g, lambda idx: np.full(len(idx), 7.5), X)
        np.testing.assert_allclose(pred, 7.5, rtol=1e-12)


@settings(max_examples=40, deadline=None)
@given(
    x=st.floats(0.01, 7.99),
    slope=st.floats(-5, 5),
    intercept=st.floats(-5, 5),
)
def test_property_univariate_linear_exact(x, slope, intercept):
    """1-D Eq. 5 reproduces any affine function exactly, fringe included."""
    g = TensorGrid([UniformMode("a", 0.0, 8.0, 8)])
    mids = g.modes[0].midpoints

    def corner_eval(idx):
        return slope * mids[idx[:, 0]] + intercept

    pred = interpolate(g, corner_eval, np.array([[x]]))
    assert pred[0] == pytest.approx(slope * x + intercept, rel=1e-9, abs=1e-9)
